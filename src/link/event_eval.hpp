// Discrete-event engine for the §5.4 trace-driven connectivity study.
//
// Instead of stepping every 1 ms slot, the engine dispatches ONE report
// event per trace interval to a fused evaluator process; each dispatch
// locates the off/on slot runs inside the interval by bisecting the
// (monotone) per-slot predicate shared with the fixed-step engine — with
// the region endpoints probed first, so mostly-connected intervals
// resolve in 1–2 probes — and tallies the runs straight into the §5.4
// 30-slot frame accumulator.  Dispatch is devirtualized via
// Scheduler::run_single (DESIGN.md §13).
//
// The result is bit-identical to evaluate_trace_fixed_step — same
// residual model, same float comparisons — with ~slot_count fewer
// predicate evaluations per interval and ~1 event per interval.
#pragma once

#include <cstdint>

#include "event/trace_hook.hpp"
#include "link/slot_eval.hpp"
#include "obs/registry.hpp"

namespace cyclops::link {

/// Event types of the trace evaluator (payload i64 = interval index).
enum TraceEvalEventType : event::EventType {
  kEvReportInterval = 1,  ///< TP report at a trace sample; starts an interval.
};

struct EventEvalStats {
  std::uint64_t dispatched = 0;
  std::uint64_t scheduled = 0;
};

/// Evaluates one trace on the event engine.  `stats` (optional) receives
/// the engine's event counts; `extra_hook` (optional) is attached to the
/// scheduler for custom observability (counters, JSONL trace).
///
/// `registry` (optional) receives eval-plane metrics: eval_traces_total,
/// eval_intervals_total, eval_bisect_iters_total, eval_{on,off}_runs_total,
/// eval_{slots,off_slots}_total, eval_events_dispatched_total counters and
/// the eval_link_off_run_ms histogram.  Every recorded value derives from
/// per-trace integers, so sharded accumulation merges bit-identically at
/// any thread count (the acceptance criterion evaluate_dataset tests).
/// No-op in CYCLOPS_OBS=OFF builds.
SlotEvalResult evaluate_trace_events(const motion::Trace& trace,
                                     const SlotEvalConfig& config,
                                     EventEvalStats* stats = nullptr,
                                     event::TraceHook* extra_hook = nullptr,
                                     obs::Registry* registry = nullptr);

}  // namespace cyclops::link

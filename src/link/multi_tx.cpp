#include "link/multi_tx.hpp"

#include <algorithm>

namespace cyclops::link {

TxChain make_tx_chain(std::uint64_t seed, const geom::Vec3& tx_position,
                      const sim::PrototypeConfig& base_config) {
  sim::PrototypeConfig config = base_config;
  config.tx_position = tx_position;
  sim::Prototype proto = sim::make_prototype(seed, config);
  util::Rng rng(seed * 2654435761ULL + 1);
  core::CalibrationResult calibration =
      core::calibrate_prototype(proto, core::CalibrationConfig{}, rng);
  return TxChain(std::move(proto), std::move(calibration));
}

MultiTxResult run_multi_tx_session(
    std::vector<TxChain>& chains, const motion::MotionProfile& profile,
    const MultiTxConfig& config,
    const std::function<bool(util::SimTimeUs, std::size_t)>& occlusion) {
  MultiTxResult result;
  if (chains.empty()) return result;

  HandoverManager manager(chains.size(), config.handover);
  const double sensitivity =
      chains.front().proto.scene.config().sfp.rx_sensitivity_dbm;
  const auto duration = util::us_from_s(profile.duration_s());
  const auto report_period = util::us_from_ms(config.report_period_ms);
  const auto lag = util::us_from_ms(
      chains.front().proto.tracker.config().position_lag_ms);

  // A TP controller per chain so latency/prediction semantics match the
  // single-TX simulator.
  std::vector<core::TpController> controllers;
  controllers.reserve(chains.size());
  for (auto& chain : chains) {
    controllers.emplace_back(chain.solver, config.tp);
  }
  std::vector<std::optional<core::PendingCommand>> pending(chains.size());

  std::vector<int> usable(chains.size(), 0);
  int slots = 0, served = 0;
  util::SimTimeUs next_report = 0;
  std::vector<double> powers(chains.size());

  for (util::SimTimeUs now = 0; now < duration; now += config.step) {
    const geom::Pose pose = profile.pose_at(now);
    const geom::Pose lagged = profile.pose_at(now > lag ? now - lag : 0);
    const bool do_report = now >= next_report;
    if (do_report) next_report = now + report_period;

    for (std::size_t i = 0; i < chains.size(); ++i) {
      TxChain& chain = chains[i];
      chain.proto.scene.set_rig_pose(pose);
      chain.proto.scene.clear_occluders();
      if (occlusion && occlusion(now, i)) {
        const geom::Vec3 mid =
            (chain.proto.scene.tx().mount().translation() +
             pose.translation()) *
            0.5;
        chain.proto.scene.add_occluder({mid, 0.25});
      }
      if (do_report) {
        tracking::PoseReport report =
            chain.proto.tracker.report(now, pose, lagged);
        if (!report.lost) {
          if (auto cmd = controllers[i].on_report(report)) pending[i] = cmd;
        }
      }
      if (pending[i] && now >= pending[i]->apply_time) {
        chain.voltages = pending[i]->voltages;
        pending[i].reset();
      }
      powers[i] = chain.proto.scene.received_power_dbm(chain.voltages);
      if (powers[i] >= sensitivity) ++usable[i];
    }

    const int serving = manager.step(now, powers);
    ++slots;
    if (serving >= 0 &&
        powers[static_cast<std::size_t>(serving)] >= sensitivity) {
      ++served;
    }
  }

  result.served_fraction =
      slots > 0 ? static_cast<double>(served) / slots : 0.0;
  result.switches = manager.switches();
  result.per_tx_usable_fraction.reserve(chains.size());
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const double fraction =
        slots > 0 ? static_cast<double>(usable[i]) / slots : 0.0;
    result.per_tx_usable_fraction.push_back(fraction);
    result.best_single_tx_fraction =
        std::max(result.best_single_tx_fraction, fraction);
  }
  return result;
}

}  // namespace cyclops::link

#include "link/multi_tx.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "event/scheduler.hpp"
#include "link/event_session.hpp"
#include "phy/fso_channel.hpp"
#include "session/lifecycle.hpp"

namespace cyclops::link {

TxChain make_tx_chain(std::uint64_t seed, const geom::Vec3& tx_position,
                      const sim::PrototypeConfig& base_config,
                      const runtime::Context& ctx) {
  sim::PrototypeConfig config = base_config;
  config.tx_position = tx_position;
  sim::Prototype proto = sim::make_prototype(seed, config);
  util::Rng rng(seed * 2654435761ULL + 1);
  core::CalibrationResult calibration =
      core::calibrate_prototype(proto, core::CalibrationConfig{}, rng, ctx);
  return TxChain(std::move(proto), std::move(calibration), ctx);
}

TxChain TxChain::from_truth(sim::Prototype p, const runtime::Context& ctx) {
  // Built before `p` moves: a CalibrationResult whose "learned" models are
  // the ground-truth ones, so make_pointing_solver yields the truth solver.
  core::CalibrationResult truth{
      core::KSpaceFitReport{
          core::GmaModel(p.tx_galvo_truth).transformed(p.k_from_tx_gma)},
      core::KSpaceFitReport{
          core::GmaModel(p.rx_galvo_truth).transformed(p.k_from_rx_gma)},
      core::MappingFitReport{p.true_map_tx, p.true_map_rx},
      {}};
  return TxChain(std::move(p), std::move(truth), ctx);
}

namespace {

/// Shared mutable state of the multi-TX session processes.  Each chain's
/// plant — applied voltages + optics read-out — is its phy::FsoChannel.
struct MultiTxState {
  std::vector<TxChain>& chains;
  std::vector<core::TpController>& controllers;
  std::vector<phy::FsoChannel>& channels;
  const MultiTxConfig& config;
  const motion::MotionProfile& profile;
  const std::function<bool(util::SimTimeUs, std::size_t)>& occlusion;
  HandoverProcess& handover;
  double sensitivity = 0.0;
  util::SimTimeUs duration = 0;
  util::SimTimeUs lag = 0;
  util::SimTimeUs next_report = 0;
  std::vector<std::optional<core::PendingCommand>> pending;
  std::vector<event::Timer> apply_timers;
  std::vector<int> usable;
  std::vector<double> powers;
  int slots = 0;
  int served = 0;
};

/// Applies a chain's voltage command at its exact DAQ+settle completion
/// instant (event payload: i64 = chain index).
class MultiTxApplyProcess final : public event::Process {
 public:
  explicit MultiTxApplyProcess(MultiTxState& s) : s_(s) {}

  void handle(event::Scheduler&, const event::Event& ev) override {
    const auto i = static_cast<std::size_t>(ev.i64);
    assert(i < s_.channels.size() && s_.pending[i]);
    s_.channels[i].set_voltages(s_.pending[i]->voltages);
    s_.pending[i].reset();
    s_.apply_timers[i] = event::Timer();
  }
  const char* name() const noexcept override { return "multi_tx_apply"; }

 private:
  MultiTxState& s_;
};

/// Periodic sampling slot: scene/occlusion update, report capture, power
/// sampling, handover decision, service accounting.  The legacy loop body
/// minus the pending-command poll, which the apply events now own.
class MultiTxSlotProcess final : public event::Process {
 public:
  MultiTxSlotProcess(MultiTxState& s, event::ProcessId apply_id)
      : s_(s), apply_id_(apply_id) {}
  void set_self(event::ProcessId id) noexcept { self_ = id; }

  void handle(event::Scheduler& sched, const event::Event& ev) override {
    const util::SimTimeUs now = ev.time;
    const geom::Pose pose = s_.profile.pose_at(now);
    const geom::Pose lagged =
        s_.profile.pose_at(now > s_.lag ? now - s_.lag : 0);
    const bool do_report = now >= s_.next_report;
    if (do_report) {
      s_.next_report = now + util::us_from_ms(s_.config.report_period_ms);
    }

    for (std::size_t i = 0; i < s_.chains.size(); ++i) {
      TxChain& chain = s_.chains[i];
      phy::FsoChannel& channel = s_.channels[i];
      sim::Scene& scene = channel.scene();
      scene.clear_occluders();
      if (s_.occlusion && s_.occlusion(now, i)) {
        const geom::Vec3 mid =
            (scene.tx().mount().translation() + pose.translation()) * 0.5;
        scene.add_occluder({mid, 0.25});
      }
      if (do_report) {
        tracking::PoseReport report =
            chain.proto.tracker.report(now, pose, lagged);
        if (!report.lost) {
          if (auto cmd = s_.controllers[i].on_report(report)) {
            // A newer command supersedes an un-applied older one (the
            // legacy pending-slot overwrite).
            if (cmd->apply_time <= now) {
              sched.cancel(s_.apply_timers[i]);
              s_.apply_timers[i] = event::Timer();
              s_.pending[i].reset();
              channel.set_voltages(cmd->voltages);
            } else {
              s_.pending[i] = *cmd;
              event::Event apply;
              apply.time = cmd->apply_time;
              apply.type = kEvApplyCommand;
              apply.target = apply_id_;
              apply.i64 = static_cast<std::int64_t>(i);
              // Mutates the pending timer in place (same queue slot) when
              // one is still live; schedules afresh otherwise.
              sched.reschedule(s_.apply_timers[i], apply);
            }
          }
        }
      }
      s_.powers[i] = channel.power_at(pose, now);
      if (s_.powers[i] >= s_.sensitivity) ++s_.usable[i];
    }

    const int serving = s_.handover.on_powers(s_.powers);
    ++s_.slots;
    const bool serving_usable =
        serving >= 0 &&
        s_.powers[static_cast<std::size_t>(serving)] >= s_.sensitivity;
    if (serving_usable) ++s_.served;
    if (s_.config.on_slot) {
      const double power =
          serving >= 0
              ? s_.powers[static_cast<std::size_t>(serving)]
              : *std::max_element(s_.powers.begin(), s_.powers.end());
      s_.config.on_slot(now, serving, serving_usable, power);
    }

    const util::SimTimeUs next = now + s_.config.step;
    if (next < s_.duration) {
      event::Event slot;
      slot.time = next;
      slot.type = kEvSlotSample;
      slot.target = self_;
      sched.schedule(slot);
    }
  }
  const char* name() const noexcept override { return "multi_tx_slot"; }

 private:
  MultiTxState& s_;
  event::ProcessId apply_id_;
  event::ProcessId self_ = event::kNoProcess;
};

/// Shared body of the two public overloads; `ctx` (optional) supplies the
/// session clock.
MultiTxResult run_multi_tx_session_impl(
    std::vector<TxChain>& chains, const motion::MotionProfile& profile,
    const MultiTxConfig& config,
    const std::function<bool(util::SimTimeUs, std::size_t)>& occlusion,
    SessionLog* log, obs::Registry* registry, const runtime::Context* ctx) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  MultiTxResult result;
  if (chains.empty()) return result;

  // A TP controller per chain so latency/prediction semantics match the
  // single-TX simulator, and a phy::FsoChannel per chain as the plant.
  std::vector<core::TpController> controllers;
  std::vector<phy::FsoChannel> channels;
  controllers.reserve(chains.size());
  channels.reserve(chains.size());
  for (auto& chain : chains) {
    controllers.emplace_back(chain.solver, config.tp);
    channels.emplace_back(chain.proto.scene);
    channels.back().set_voltages(chain.voltages);
  }

  session::ScopedScheduler lease(session::bind_session_clock(ctx));
  event::Scheduler& sched = lease.get();
  // Registered first so an equal-time switch-done timer (scheduled before
  // any same-time slot event was) commits the new TX before that slot
  // samples it — matching the legacy `now < switch_done_` window.
  HandoverProcess handover(chains.size(), config.handover, sched, log,
                           registry);

  MultiTxState s{chains, controllers, channels, config,
                 profile, occlusion, handover};
  s.sensitivity = channels.front().info().sensitivity;
  s.duration = util::us_from_s(profile.duration_s());
  s.lag = util::us_from_ms(
      chains.front().proto.tracker.config().position_lag_ms);
  s.pending.resize(chains.size());
  s.apply_timers.resize(chains.size());
  s.usable.assign(chains.size(), 0);
  s.powers.assign(chains.size(), 0.0);

  MultiTxApplyProcess apply(s);
  const event::ProcessId apply_id = sched.add_process(&apply);
  MultiTxSlotProcess slot(s, apply_id);
  const event::ProcessId slot_id = sched.add_process(&slot);
  slot.set_self(slot_id);

  if (s.duration > 0) {
    event::Event first;
    first.time = 0;
    first.type = kEvSlotSample;
    first.target = slot_id;
    sched.schedule(first);
  }
  sched.run();

  // The channels owned the applied voltages for the session; hand the
  // final values back so TxChain stays an honest snapshot for callers.
  for (std::size_t i = 0; i < chains.size(); ++i) {
    chains[i].voltages = channels[i].voltages();
  }

  result.served_fraction =
      s.slots > 0 ? static_cast<double>(s.served) / s.slots : 0.0;
  result.switches = handover.switches();
  result.cancelled_switches = handover.cancelled_switches();
  result.events = sched.dispatched();
  result.per_tx_usable_fraction.reserve(chains.size());
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const double fraction =
        s.slots > 0 ? static_cast<double>(s.usable[i]) / s.slots : 0.0;
    result.per_tx_usable_fraction.push_back(fraction);
    result.best_single_tx_fraction =
        std::max(result.best_single_tx_fraction, fraction);
  }
  if (registry != nullptr) {
    registry->counter("multi_tx_slots_total")
        .inc(static_cast<std::uint64_t>(s.slots));
    registry->counter("multi_tx_served_total")
        .inc(static_cast<std::uint64_t>(s.served));
    registry->counter("multi_tx_events_dispatched_total")
        .inc(sched.dispatched());
  }
  return result;
}

}  // namespace

MultiTxResult run_multi_tx_session(
    std::vector<TxChain>& chains, const motion::MotionProfile& profile,
    const MultiTxConfig& config,
    const std::function<bool(util::SimTimeUs, std::size_t)>& occlusion,
    SessionLog* log, obs::Registry* registry) {
  return run_multi_tx_session_impl(chains, profile, config, occlusion, log,
                                   registry, nullptr);
}

MultiTxResult run_multi_tx_session(
    std::vector<TxChain>& chains, const motion::MotionProfile& profile,
    const MultiTxConfig& config,
    const std::function<bool(util::SimTimeUs, std::size_t)>& occlusion,
    const runtime::Context& ctx, SessionLog* log) {
  return run_multi_tx_session_impl(chains, profile, config, occlusion, log,
                                   &ctx.registry(), &ctx);
}

}  // namespace cyclops::link

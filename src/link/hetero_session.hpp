// Heterogeneous FSO → fallback sessions: the Cyclops FSO chain and a
// second phy::Channel (typically phy::MmWaveChannel — §2.1's 60 GHz
// baseline as a fallback radio, or a phy::WdmChannel) run side by side in
// ONE event scheduler, with HandoverProcess arbitrating between them.
//
// Channels report metrics in different units (dBm vs SNR dB vs margin
// dB), so the handover decision runs in *margin space*: each channel
// contributes metric − sensitivity, and HandoverConfig::drop_threshold_dbm
// is therefore 0.0 by default here ("drop when the serving channel loses
// its own link margin").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/tp_controller.hpp"
#include "link/handover.hpp"
#include "link/session_core.hpp"
#include "link/session_log.hpp"
#include "motion/profile.hpp"
#include "obs/registry.hpp"
#include "phy/channel.hpp"
#include "runtime/context.hpp"
#include "sim/prototype.hpp"

namespace cyclops::link {

struct HeteroConfig {
  /// Handover thresholds in margin space (dB above each channel's own
  /// sensitivity).  Hysteresis keeps the session on FSO while it holds.
  HandoverConfig handover{.hysteresis_db = 3.0, .drop_threshold_dbm = 0.0};
  /// Policy bias for the primary: the fallback's margin is charged this
  /// many dB in the handover decision (not in usable_fraction).  mmWave
  /// SNR margins are numerically far larger than optical ones, so without
  /// a bias the session would camp on the fallback; with it, the fallback
  /// serves only while the FSO chain is actually degraded.
  double fallback_penalty_db = 30.0;
  util::SimTimeUs step = 1000;
  /// §5.3 aligned start: FSO steered onto the RX and both link-state
  /// machines forced up/trained.
  bool align_at_start = true;
  /// Optional FSO LOS obstruction (occluder mid-beam while true); the
  /// fallback channel models its own blockage (MmWaveChannelConfig).
  std::function<bool(util::SimTimeUs)> fso_occlusion;
  /// Optional per-slot tap: (slot time, serving channel index or -1
  /// mid-switch, serving link up, delivered rate in Gbps — 0 while down).
  /// This is how a streaming data plane rides the session: capture the
  /// rate timeline here and feed it to stream::StreamPipeline as its
  /// CapacityFn (examples/spectator_demo.cpp).
  std::function<void(util::SimTimeUs, int, bool, double)> on_slot;
};

struct HeteroChannelStats {
  std::string name;
  double usable_fraction = 0.0;   ///< Slots with non-negative margin.
  double serving_fraction = 0.0;  ///< Slots this channel was serving.
};

struct HeteroResult {
  /// Fraction of slots where the serving channel carried traffic.
  double served_fraction = 0.0;
  /// Mean delivered rate over all slots (serving channel's rate ladder).
  double avg_rate_gbps = 0.0;
  int switches = 0;
  int cancelled_switches = 0;
  int realignments = 0;  ///< TP realignments on the FSO chain.
  std::uint64_t events = 0;
  std::vector<HeteroChannelStats> channels;  ///< [0] = FSO, [1] = fallback.
};

/// Runs the FSO chain of `proto`/`controller` plus `fallback` over
/// `profile` in one scheduler.  `log` (optional) receives kHandover /
/// kReacquisition / kRealignment events; `registry` (optional) receives
/// hetero_{slots,served,events_dispatched}_total counters plus the
/// HandoverProcess metrics.
HeteroResult run_hetero_session(sim::Prototype& proto,
                                core::TpController& controller,
                                phy::Channel& fallback,
                                const motion::MotionProfile& profile,
                                const HeteroConfig& config = {},
                                SessionLog* log = nullptr,
                                obs::Registry* registry = nullptr);

/// Context overload: metrics land in ctx.registry(), the scheduler rides
/// ctx.clock() (reset to 0), and the start-up alignment polish fans out
/// over ctx.pool().
HeteroResult run_hetero_session(sim::Prototype& proto,
                                core::TpController& controller,
                                phy::Channel& fallback,
                                const motion::MotionProfile& profile,
                                const runtime::Context& ctx,
                                const HeteroConfig& config = {},
                                SessionLog* log = nullptr);

}  // namespace cyclops::link

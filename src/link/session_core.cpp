#include "link/session_core.hpp"

#include <cassert>
#include <optional>

#include "core/exhaustive_aligner.hpp"
#include "session/lifecycle.hpp"

namespace cyclops::link {
namespace detail {

void TrackerProcess::handle(event::Scheduler& sched, const event::Event&) {
  const util::SimTimeUs now = sched.now();
  const geom::Pose pose = s_.profile.pose_at(now);
  const util::SimTimeUs lag =
      util::us_from_ms(s_.proto.tracker.config().position_lag_ms);
  const geom::Pose lagged = s_.profile.pose_at(now > lag ? now - lag : 0);
  const tracking::PoseReport report =
      s_.proto.tracker.report(now, pose, lagged);
  if (!report.lost) {
    if (auto cmd = s_.controller.on_report(report)) {
      ++s_.result.realignments;
      s_.pending.push_back(*cmd);
      event::Event apply;
      apply.time = std::max(now, cmd->apply_time);
      apply.type = kEvApplyCommand;
      apply.target = plant_;
      sched.schedule(apply);
      if constexpr (obs::kEnabled) {
        if (s_.metrics.realignments != nullptr) {
          s_.metrics.realignments->inc();
          s_.metrics.realign_latency_us->record(
              static_cast<double>(apply.time - now));
        }
      }
    } else {
      if (s_.log) {
        s_.log->on_event(report.delivery_time, SessionEventKind::kTpFailure);
      }
      if constexpr (obs::kEnabled) {
        if (s_.metrics.tp_failures != nullptr) s_.metrics.tp_failures->inc();
      }
    }
  }
  const util::SimTimeUs next = s_.proto.tracker.next_capture_time(now);
  if (next < s_.duration) {
    event::Event capture;
    capture.time = next;
    capture.type = kEvReportCapture;
    capture.target = self_;
    sched.schedule(capture);
  }
}

void SamplerProcess::handle(event::Scheduler& sched, const event::Event&) {
  const util::SimTimeUs now = sched.now();
  // Ties between an apply event and a slot at the same microsecond must
  // resolve apply-first (the legacy loop applies before sampling).
  s_.drain_commands(now);
  const double power = s_.channel.power_at(s_.profile.pose_at(now), now);
  const bool up = s_.channel.step(now, power);
  if (s_.options.on_slot) s_.options.on_slot(now, up, power);
  if (s_.log) s_.log->on_slot(now, up, power);
  if constexpr (obs::kEnabled) {
    if (s_.metrics.link_off_us != nullptr) {
      // Contiguous down spans, measured slot-edge to slot-edge.
      if (s_.prev_up != 0 && !up) s_.down_since = now;
      if (s_.prev_up == 0 && up) {
        s_.metrics.link_off_us->record(
            static_cast<double>(now - s_.down_since));
      }
      s_.prev_up = up ? 1 : 0;
    }
  }

  const phy::ChannelInfo& info = s_.channel.info();
  s_.tally.add_slot(power, up, info.sensitivity,
                    up ? info.peak_rate_gbps : 0.0);
  const util::SimTimeUs step = s_.options.step;
  if (s_.tally.window_closes(now, step, s_.options.window, s_.duration)) {
    s_.result.windows.push_back(s_.tally.flush(s_.profile, now, step,
                                               s_.options.window,
                                               info.peak_rate_gbps,
                                               info.rate_adaptive));
  }
  if (now + step < s_.duration) {
    event::Event slot;
    slot.time = now + step;
    slot.type = kEvSlotSample;
    slot.target = self_;
    sched.schedule(slot);
  }
}

namespace {

/// The quantized engine: the legacy fixed-step loop's per-slot arithmetic,
/// verbatim, run as scheduler dispatches.  Reports stay quantized to the
/// physics grid (`now >= next_report`) and the slots *between* report
/// boundaries coalesce into one dispatch — the EvalEngine interval
/// pattern — so the engine does one heap operation per report interval
/// (~25 slots) yet replays the oracle's arithmetic and RNG draws in the
/// oracle's order, making the per-window output bit-identical.
class QuantizedFsoProcess final : public event::Process {
 public:
  QuantizedFsoProcess(SessionState& s, util::SimTimeUs first_report)
      : s_(s), next_report_(first_report) {}

  void handle(event::Scheduler& sched, const event::Event& ev) override {
    for (util::SimTimeUs now = ev.time;;) {
      run_slot(now);
      const util::SimTimeUs next = now + s_.options.step;
      if (next >= s_.duration) return;
      if (next >= next_report_) {
        // The next slot delivers a tracker report: make it an event so
        // the timeline stays inspectable (and hookable) at the control
        // plane's cadence.
        event::Event capture;
        capture.time = next;
        capture.type = kEvReportCapture;
        capture.target = self_;
        sched.schedule(capture);
        return;
      }
      now = next;
    }
  }

  void set_self(event::ProcessId self) { self_ = self; }
  const char* name() const noexcept override { return "fso-quantized"; }

 private:
  void run_slot(util::SimTimeUs now) {
    const geom::Pose pose = s_.profile.pose_at(now);

    // Tracker report?  (Quantized: fires on the slot grid, like the
    // oracle; the report path never reads the scene, so deferring the
    // rig-pose write into power_at below is arithmetic-neutral.)
    if (now >= next_report_) {
      const util::SimTimeUs lag =
          util::us_from_ms(s_.proto.tracker.config().position_lag_ms);
      const geom::Pose lagged = s_.profile.pose_at(now > lag ? now - lag : 0);
      const tracking::PoseReport report =
          s_.proto.tracker.report(now, pose, lagged);
      if (!report.lost) {
        if (auto cmd = s_.controller.on_report(report)) {
          s_.pending.push_back(*cmd);
          ++s_.result.realignments;
        }
      }
      next_report_ = s_.proto.tracker.next_capture_time(now);
    }
    // Apply pending realignments once their latency has elapsed.
    s_.drain_commands(now);

    const double power = s_.channel.power_at(pose, now);
    const bool up = s_.channel.step(now, power);
    if (s_.options.on_slot) s_.options.on_slot(now, up, power);

    const phy::ChannelInfo& info = s_.channel.info();
    s_.tally.add_slot(power, up, info.sensitivity,
                      up ? info.peak_rate_gbps : 0.0);
    if (s_.tally.window_closes(now, s_.options.step, s_.options.window,
                               s_.duration)) {
      s_.result.windows.push_back(
          s_.tally.flush(s_.profile, now, s_.options.step, s_.options.window,
                         info.peak_rate_gbps, info.rate_adaptive));
    }
  }

  SessionState& s_;
  util::SimTimeUs next_report_ = 0;
  event::ProcessId self_ = event::kNoProcess;
};

}  // namespace

RunResult run_link_simulation_event(sim::Prototype& proto,
                                    core::TpController& controller,
                                    const motion::MotionProfile& profile,
                                    const SimOptions& options) {
  phy::FsoChannel channel(proto.scene);
  SessionState s{proto,   controller, profile, options,
                 nullptr, SessionMetrics(nullptr), channel};
  s.duration = util::us_from_s(profile.duration_s());

  proto.scene.set_rig_pose(profile.pose_at(0));
  if (options.align_at_start) {
    // §5.3 protocol: each run starts from an aligned link.  Same calls,
    // same order, same RNG draws as the oracle.
    sim::Voltages applied = channel.voltages();
    const core::PointingResult initial = controller.solver().solve(
        proto.tracker.ideal_report(proto.scene.rig_pose()), applied);
    applied = initial.voltages;
    core::ExhaustiveAligner polish;
    channel.set_voltages(polish.align(proto.scene, applied).voltages);
    channel.force_up();
  }
  proto.tracker.reset_schedule();  // simulation time restarts at 0

  event::Scheduler sched;
  QuantizedFsoProcess engine(s, proto.tracker.next_capture_time(0));
  const event::ProcessId engine_id = sched.add_process(&engine);
  engine.set_self(engine_id);
  if (s.duration > 0) {
    event::Event start;
    start.time = 0;
    start.type = kEvSlotSample;
    start.target = engine_id;
    sched.schedule(start);
  }
  sched.run();

  s.tally.finalize(s.result);
  s.result.tp_failures = controller.failures();
  s.result.avg_pointing_iterations = controller.avg_pointing_iterations();
  return s.result;
}

}  // namespace detail

namespace {

/// Slot process of a steering-free channel session: metric, link state,
/// rate, window accounting — no tracker/TP plane.
class ChannelSlotProcess final : public event::Process {
 public:
  ChannelSlotProcess(phy::Channel& channel,
                     const motion::MotionProfile& profile,
                     const ChannelSessionOptions& options,
                     util::SimTimeUs duration, RunResult& result)
      : channel_(channel),
        profile_(profile),
        options_(options),
        duration_(duration),
        result_(result) {}

  void handle(event::Scheduler& sched, const event::Event&) override {
    const util::SimTimeUs now = sched.now();
    const double power = channel_.power_at(profile_.pose_at(now), now);
    const bool up = channel_.step(now, power);
    const double rate = up ? channel_.rate_for(power) : 0.0;
    if (options_.on_slot) options_.on_slot(now, up, power);

    const phy::ChannelInfo& info = channel_.info();
    tally_.add_slot(power, up, info.sensitivity, rate);
    if (tally_.window_closes(now, options_.step, options_.window, duration_)) {
      result_.windows.push_back(
          tally_.flush(profile_, now, options_.step, options_.window,
                       info.peak_rate_gbps, info.rate_adaptive));
    }
    if (now + options_.step < duration_) {
      event::Event slot;
      slot.time = now + options_.step;
      slot.type = kEvSlotSample;
      slot.target = self_;
      sched.schedule(slot);
    }
  }

  void set_self(event::ProcessId self) { self_ = self; }
  void finalize() { tally_.finalize(result_); }
  int total_slots() const noexcept { return tally_.total_slots; }
  const char* name() const noexcept override { return "channel-slot"; }

 private:
  phy::Channel& channel_;
  const motion::MotionProfile& profile_;
  const ChannelSessionOptions& options_;
  util::SimTimeUs duration_;
  RunResult& result_;
  detail::WindowTally tally_;
  event::ProcessId self_ = event::kNoProcess;
};

RunResult run_channel_session_impl(phy::Channel& channel,
                                   const motion::MotionProfile& profile,
                                   const ChannelSessionOptions& options,
                                   obs::Registry* registry,
                                   const runtime::Context* ctx,
                                   ChannelSessionStats* stats) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  RunResult result;
  const util::SimTimeUs duration = util::us_from_s(profile.duration_s());
  if (options.force_up_at_start) channel.force_up();

  session::ScopedScheduler lease(session::bind_session_clock(ctx));
  event::Scheduler& sched = lease.get();

  ChannelSlotProcess slots(channel, profile, options, duration, result);
  const event::ProcessId slots_id = sched.add_process(&slots);
  slots.set_self(slots_id);
  if (duration > 0) {
    event::Event slot;
    slot.time = 0;
    slot.type = kEvSlotSample;
    slot.target = slots_id;
    sched.schedule(slot);
  }
  sched.run();
  slots.finalize();

  if (stats != nullptr) {
    stats->events = sched.dispatched();
    stats->slots = static_cast<std::uint64_t>(slots.total_slots());
  }
  if (registry != nullptr) {
    const obs::Labels labels{{"channel", channel.info().name}};
    registry->counter("channel_session_slots_total", labels)
        .inc(static_cast<std::uint64_t>(slots.total_slots()));
    registry->counter("channel_session_events_dispatched_total", labels)
        .inc(sched.dispatched());
  }
  return result;
}

}  // namespace

RunResult run_channel_session(phy::Channel& channel,
                              const motion::MotionProfile& profile,
                              const ChannelSessionOptions& options,
                              obs::Registry* registry,
                              ChannelSessionStats* stats) {
  return run_channel_session_impl(channel, profile, options, registry,
                                  nullptr, stats);
}

RunResult run_channel_session(phy::Channel& channel,
                              const motion::MotionProfile& profile,
                              const runtime::Context& ctx,
                              const ChannelSessionOptions& options,
                              ChannelSessionStats* stats) {
  return run_channel_session_impl(channel, profile, options, &ctx.registry(),
                                  &ctx, stats);
}

}  // namespace cyclops::link

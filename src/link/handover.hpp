// Multi-TX handover (§3): several ceiling transmitters cover occlusions
// and the GMs' limited field of view; the manager keeps the best usable
// TX active with hysteresis, paying a switch delay (re-pointing + SFP
// re-acquisition on the new TX).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/sim_clock.hpp"

namespace cyclops::link {

struct HandoverConfig {
  /// New TX must beat the active one by this much to trigger a switch.
  double hysteresis_db = 3.0;
  /// Power below which the active TX is considered lost (e.g. the SFP
  /// sensitivity) and an immediate switch is allowed.
  double drop_threshold_dbm = -25.0;
  /// Time to re-point and re-acquire on the new TX.
  double switch_delay_s = 0.2;
  /// Event-driven extension (honored by HandoverProcess only): when a
  /// drop-triggered switch is pending and the old TX recovers above
  /// `drop_threshold_dbm` before the switch-done timer fires, cancel the
  /// handover and keep serving from the old TX.  The legacy step() path
  /// commits switches instantly and cannot cancel.
  bool cancel_on_reacquire = false;
};

class HandoverManager {
 public:
  HandoverManager(std::size_t num_tx, HandoverConfig config)
      : config_(config), num_tx_(num_tx) {}

  /// Feeds the per-TX achievable powers for this instant; returns the
  /// index of the serving TX, or -1 while a switch is in progress.
  int step(util::SimTimeUs now, std::span<const double> powers_dbm);

  int active() const noexcept { return active_; }
  int switches() const noexcept { return switches_; }
  bool switching(util::SimTimeUs now) const noexcept {
    return now < switch_done_;
  }

 private:
  HandoverConfig config_;
  std::size_t num_tx_;
  int active_ = 0;
  int switches_ = 0;
  util::SimTimeUs switch_done_ = 0;
};

}  // namespace cyclops::link

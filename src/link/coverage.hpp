// Room-scale coverage planning for multi-TX deployments (§3: "to
// circumvent occasional occlusions and/or limited field-of-view coverage
// of the GMs, we can use multiple TXs on the ceiling").
//
// A ceiling TX covers a head position when the line of sight falls inside
// the TX galvo's steering cone (the GM scans ±2·theta1·Vmax about the
// downward boresight).  The planner greedily places TXs on a ceiling grid
// until every head-height sample is covered by `min_coverage` distinct
// TXs (redundancy >= 2 rides out single-beam occlusions).
#pragma once

#include <vector>

#include "geom/vec3.hpp"

namespace cyclops::link {

struct RoomConfig {
  double width = 4.0;        ///< x extent (m).
  double depth = 4.0;        ///< z extent (m).
  double ceiling_height = 2.6;
  /// Head positions to cover: a horizontal band at these heights.
  double head_height_min = 1.0;
  double head_height_max = 1.8;
  /// TX steering half-cone (rad); GVS102 at 1 deg/V, ±10 V -> ±20 deg
  /// of beam deflection.
  double tx_cone_half_angle = 0.349;
  /// Candidate/evaluation grid pitch (m).
  double grid_pitch = 0.25;
  /// Required number of covering TXs per head position.
  int min_coverage = 1;
  /// Maximum usable link range (m) — link-budget limited.
  double max_range = 3.0;
};

struct CoveragePlan {
  std::vector<geom::Vec3> tx_positions;
  /// Fraction of head samples with >= min_coverage covering TXs.
  double covered_fraction = 0.0;
  int head_samples = 0;
};

/// True when a TX at `tx` (on the ceiling, boresight straight down) can
/// steer its beam to `head`.
bool tx_covers(const geom::Vec3& tx, const geom::Vec3& head,
               const RoomConfig& room);

/// Coverage achieved by a given TX set.
double coverage_fraction(const std::vector<geom::Vec3>& tx_positions,
                         const RoomConfig& room);

/// Greedy placement until full coverage (or no candidate helps).
CoveragePlan plan_coverage(const RoomConfig& room);

}  // namespace cyclops::link

// Session logging: record a closed-loop run (per-window link metrics and
// discrete events) and export to CSV for offline analysis.  A deployed
// system needs this trail to diagnose "why did my headset freeze at
// 14:32" — and the bench harness uses it to archive runs.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "link/fso_link.hpp"

namespace cyclops::link {

enum class SessionEventKind {
  kLinkUp,
  kLinkDown,
  kRealignment,
  kTpFailure,
  kHandover,       ///< Switch to another TX completed.
  kReacquisition,  ///< Pending switch cancelled: the old TX came back.
};

struct SessionEvent {
  util::SimTimeUs time = 0;
  SessionEventKind kind = SessionEventKind::kLinkUp;
  double power_dbm = 0.0;
};

const char* to_string(SessionEventKind kind) noexcept;

/// Collects per-slot samples into events + keeps the run's windows.
class SessionLog {
 public:
  /// Feeds one slot (wire into SimOptions::on_slot).
  void on_slot(util::SimTimeUs now, bool up, double power_dbm);

  /// Records a discrete event at its *exact* (event-engine) timestamp —
  /// realignments, handovers, and reacquisitions land between slot
  /// boundaries, and the event-driven control plane reports them here
  /// un-quantized.
  void on_event(util::SimTimeUs now, SessionEventKind kind,
                double power_dbm = 0.0);

  /// Attach the run result (windows etc.) once the simulation finishes.
  void finish(const RunResult& result) { windows_ = result.windows; }

  const std::vector<SessionEvent>& events() const noexcept { return events_; }
  const std::vector<WindowSample>& windows() const noexcept {
    return windows_;
  }

  /// Counts by kind.
  int count(SessionEventKind kind) const;

  /// Longest continuous down period (seconds).
  double longest_outage_s() const;

  /// Writes two CSVs: <stem>_windows.csv and <stem>_events.csv.
  void save(const std::filesystem::path& stem) const;

 private:
  std::vector<SessionEvent> events_;
  std::vector<WindowSample> windows_;
  bool have_state_ = false;
  bool last_up_ = false;
  util::SimTimeUs last_time_ = 0;
};

}  // namespace cyclops::link

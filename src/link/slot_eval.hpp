// The §5.4 trace-driven connectivity simulation, exactly as the paper
// specifies it: 1 ms slots; at each (10 ms) trace report the TP mechanism
// realigns within `tp_latency_ms` leaving a residual lateral/angular
// error; between reports the terminal drifts at the report-to-report rate;
// a slot is disconnected when accumulated lateral or angular error exceeds
// the link's tolerance.
//
// Two engines produce the identical result:
//  * kEvent (default): the discrete-event engine in event_eval.cpp — one
//    report event per trace interval, off/on runs located by monotone
//    bisection of the shared per-slot predicate, frame accounting in
//    O(slots / 30).
//  * kFixedStep: the legacy per-slot loop, kept as a cross-check oracle.
// Both call detail::IntervalModel::off_at for the per-slot decision, so
// they agree bit-for-bit (enforced in tests/event_test.cpp and in
// bench/fig16_trace_cdf).
#pragma once

#include <cstdint>
#include <vector>

#include "motion/trace.hpp"
#include "obs/registry.hpp"
#include "runtime/context.hpp"
#include "util/thread_pool.hpp"

namespace cyclops::link {

enum class EvalEngine {
  kEvent,      ///< Discrete-event engine (exact-match, less per-slot work).
  kFixedStep,  ///< Legacy 1 ms-loop engine (cross-check oracle).
};

struct SlotEvalConfig {
  double slot_ms = 1.0;
  double tp_latency_ms = 2.0;
  /// Residual TP error after a realignment (§5.4 uses the Table-2 combined
  /// averages: 4.54 mm lateral, 4.54 mm / 1.75 m = 2.59 mrad angular).
  double residual_lateral_m = 4.54e-3;
  double residual_angular_rad = 4.54e-3 / 1.75;
  /// Link movement tolerances (25G design: 6 mm lateral, 8.73 mrad).
  double lateral_tolerance_m = 6e-3;
  double angular_tolerance_rad = 8.73e-3;
  EvalEngine engine = EvalEngine::kEvent;
};

struct SlotEvalResult {
  int total_slots = 0;
  int off_slots = 0;
  double off_fraction() const {
    return total_slots > 0 ? static_cast<double>(off_slots) / total_slots : 0.0;
  }
  /// Off-slot clustering: for each 30-slot "frame" containing at least one
  /// off-slot, how many of its slots were off.
  std::vector<int> off_per_dirty_frame;
  /// Fraction of off-slots that fall in frames with fewer than
  /// `threshold` off-slots (the paper reports >60 % for threshold 10).
  double scattered_fraction(int threshold = 10) const;
};

namespace detail {

/// The §5.4 drift model for one report interval, shared verbatim by both
/// engines — a single definition of the per-slot float arithmetic is what
/// makes the engines bit-identical.
struct IntervalModel {
  double gap_ms = 0.0;
  double lat_rate = 0.0;  ///< m/ms (>= 0: it is a distance over a gap).
  double ang_rate = 0.0;  ///< rad/ms (>= 0).
  const SlotEvalConfig* config = nullptr;

  /// True while slot s (0-based within the interval) still rides the
  /// carry-over branch (realignment for this interval's report not yet
  /// landed).  Monotone non-increasing in s.
  bool in_carry(int s) const {
    return (s + 1) * config->slot_ms <= config->tp_latency_ms;
  }

  /// The legacy per-slot decision, byte-for-byte.  Within each branch the
  /// error is a monotone non-decreasing function of s (rates and times are
  /// non-negative and IEEE rounding is monotone), so "off" is a monotone
  /// predicate per region — which is what lets the event engine bisect for
  /// the first off slot instead of scanning.
  bool off_at(int s) const {
    const double t_ms = (s + 1) * config->slot_ms;
    double lat_err, ang_err;
    if (t_ms <= config->tp_latency_ms) {
      // Realignment for the report at the interval start hasn't landed:
      // drift continues on top of the previous interval's budget.  Use a
      // conservative carry-over of one full interval of drift.
      lat_err = config->residual_lateral_m + lat_rate * (gap_ms + t_ms);
      ang_err = config->residual_angular_rad + ang_rate * (gap_ms + t_ms);
    } else {
      lat_err = config->residual_lateral_m + lat_rate * t_ms;
      ang_err = config->residual_angular_rad + ang_rate * t_ms;
    }
    return lat_err > config->lateral_tolerance_m ||
           ang_err > config->angular_tolerance_rad;
  }
};

/// Number of 1 ms slots in a 30-slot video frame (§5.4's clustering unit).
inline constexpr int kFrameSlots = 30;

}  // namespace detail

/// Evaluates one trace with the engine selected in `config`.
SlotEvalResult evaluate_trace(const motion::Trace& trace,
                              const SlotEvalConfig& config);

/// Context overload: the eval-plane metrics (event engine only) land in
/// `ctx.registry()` instead of being dropped.
SlotEvalResult evaluate_trace(const motion::Trace& trace,
                              const SlotEvalConfig& config,
                              const runtime::Context& ctx);

/// The legacy fixed-step engine, regardless of config.engine.
SlotEvalResult evaluate_trace_fixed_step(const motion::Trace& trace,
                                         const SlotEvalConfig& config);

/// Evaluates a dataset; returns per-trace off-fractions (for the Fig 16
/// CDF) plus the pooled result.  Traces are evaluated in parallel over
/// `pool` — one event engine per trace — and merged in trace order, so the
/// result is bit-identical to the serial path at any thread count (pass
/// util::ThreadPool::serial() to force inline execution).
///
/// `registry` (optional, event engine only) accumulates the eval-plane
/// metrics documented on evaluate_trace_events.  Each pool chunk records
/// into its own registry shard and the shards merge in chunk-index order
/// after the fan-out, so the merged metric values (counters, histogram
/// buckets, extrema) are bit-identical at any thread count — the same
/// determinism contract the simulation outputs already obey.
struct DatasetEvalResult {
  std::vector<double> per_trace_off_fraction;
  SlotEvalResult pooled;
  /// Total events dispatched (0 when config.engine == kFixedStep).
  std::uint64_t events = 0;
};
DatasetEvalResult evaluate_dataset(
    const std::vector<motion::Trace>& traces, const SlotEvalConfig& config,
    util::ThreadPool& pool = util::ThreadPool::global(),
    obs::Registry* registry = nullptr);

/// Context overload: fans out over `ctx.pool()` and accumulates the
/// eval-plane metrics into `ctx.registry()` — one argument instead of the
/// pool/registry pair.
DatasetEvalResult evaluate_dataset(const std::vector<motion::Trace>& traces,
                                   const SlotEvalConfig& config,
                                   const runtime::Context& ctx);

}  // namespace cyclops::link

// The §5.4 trace-driven connectivity simulation, exactly as the paper
// specifies it: 1 ms slots; at each (10 ms) trace report the TP mechanism
// realigns within `tp_latency_ms` leaving a residual lateral/angular
// error; between reports the terminal drifts at the report-to-report rate;
// a slot is disconnected when accumulated lateral or angular error exceeds
// the link's tolerance.
#pragma once

#include <vector>

#include "motion/trace.hpp"
#include "util/thread_pool.hpp"

namespace cyclops::link {

struct SlotEvalConfig {
  double slot_ms = 1.0;
  double tp_latency_ms = 2.0;
  /// Residual TP error after a realignment (§5.4 uses the Table-2 combined
  /// averages: 4.54 mm lateral, 4.54 mm / 1.75 m = 2.59 mrad angular).
  double residual_lateral_m = 4.54e-3;
  double residual_angular_rad = 4.54e-3 / 1.75;
  /// Link movement tolerances (25G design: 6 mm lateral, 8.73 mrad).
  double lateral_tolerance_m = 6e-3;
  double angular_tolerance_rad = 8.73e-3;
};

struct SlotEvalResult {
  int total_slots = 0;
  int off_slots = 0;
  double off_fraction() const {
    return total_slots > 0 ? static_cast<double>(off_slots) / total_slots : 0.0;
  }
  /// Off-slot clustering: for each 30-slot "frame" containing at least one
  /// off-slot, how many of its slots were off.
  std::vector<int> off_per_dirty_frame;
  /// Fraction of off-slots that fall in frames with fewer than
  /// `threshold` off-slots (the paper reports >60 % for threshold 10).
  double scattered_fraction(int threshold = 10) const;
};

/// Evaluates one trace.
SlotEvalResult evaluate_trace(const motion::Trace& trace,
                              const SlotEvalConfig& config);

/// Evaluates a dataset; returns per-trace off-fractions (for the Fig 16
/// CDF) plus the pooled result.  Traces are evaluated in parallel over
/// `pool` and merged in trace order, so the result is bit-identical to the
/// serial path at any thread count (pass util::ThreadPool::serial() to
/// force inline execution).
struct DatasetEvalResult {
  std::vector<double> per_trace_off_fraction;
  SlotEvalResult pooled;
};
DatasetEvalResult evaluate_dataset(
    const std::vector<motion::Trace>& traces, const SlotEvalConfig& config,
    util::ThreadPool& pool = util::ThreadPool::global());

}  // namespace cyclops::link

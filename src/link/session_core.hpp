// The unified event-driven session core (the engine behind every closed
// loop in src/link since the phy refactor).
//
// One set of processes — plant, tracker, sampler — parameterized by a
// phy::Channel runs:
//   * run_link_simulation's kEvent engine (quantized timing discipline:
//     reports land on the physics grid and slots between report
//     boundaries coalesce into one dispatch, so the per-window output is
//     bit-identical to the fixed-step oracle — the PR-2 EvalEngine
//     pattern),
//   * run_link_session_events (exact timing discipline: jittered capture
//     times and DAQ+settle applies at their exact microseconds — agrees
//     closely but deliberately not bit-for-bit),
//   * run_multi_tx_session (per-chain FsoChannels + HandoverProcess),
//   * run_channel_session below — any phy::Channel (mmWave baseline, WDM)
//     with no steering plane, which is how bench/baseline_mmwave and
//     bench/future_wdm ride the same core,
//   * run_hetero_session (link/hetero_session) — FSO + fallback channel
//     in one scheduler.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>

#include "core/tp_controller.hpp"
#include "event/scheduler.hpp"
#include "link/fso_link.hpp"
#include "link/session_log.hpp"
#include "motion/profile.hpp"
#include "obs/config.hpp"
#include "obs/registry.hpp"
#include "phy/channel.hpp"
#include "phy/fso_channel.hpp"
#include "runtime/context.hpp"
#include "sim/prototype.hpp"

namespace cyclops::link {

/// Event types of the session processes (payload: i64 = chain index for
/// apply/switch events).  Lived in event_session.hpp before the core was
/// unified.
enum SessionEventType : event::EventType {
  kEvReportCapture = 1,  ///< VRH-T captures (and delivers) a pose report.
  kEvApplyCommand,       ///< A DAQ voltage command finishes settling.
  kEvSlotSample,         ///< Periodic link sampling slot.
  kEvSwitchDone,         ///< Handover switch delay elapsed.
};

/// Options for a steering-free channel session (the session core with no
/// tracker/TP plane — mmWave baseline, WDM sweeps).
struct ChannelSessionOptions {
  util::SimTimeUs step = 500;
  util::SimTimeUs window = 50000;
  /// Start with the link-state machine up/trained (§5.3 protocol).
  bool force_up_at_start = true;
  /// Optional per-slot observer: (time, traffic flows?, metric).
  std::function<void(util::SimTimeUs, bool, double)> on_slot;
};

/// Scheduler-level accounting for a channel session; filled regardless of
/// CYCLOPS_OBS, unlike the registry counters (mirrors EventSessionStats).
struct ChannelSessionStats {
  std::uint64_t events = 0;  ///< Dispatched by the scheduler.
  std::uint64_t slots = 0;   ///< Channel slots sampled.
};

/// Runs `channel` over `profile` on the event scheduler.  The RunResult's
/// windows carry the channel metric in the power fields; throughput is
/// rate-aware (see RunResult::avg_rate_gbps).  `registry` (optional)
/// receives channel_session_{slots,events_dispatched}_total counters
/// labeled {channel=<name>}.
RunResult run_channel_session(phy::Channel& channel,
                              const motion::MotionProfile& profile,
                              const ChannelSessionOptions& options = {},
                              obs::Registry* registry = nullptr,
                              ChannelSessionStats* stats = nullptr);

/// Context overload: metrics land in ctx.registry() and the scheduler
/// rides ctx.clock() (reset to 0 — session isolation for the baseline).
RunResult run_channel_session(phy::Channel& channel,
                              const motion::MotionProfile& profile,
                              const runtime::Context& ctx,
                              const ChannelSessionOptions& options = {},
                              ChannelSessionStats* stats = nullptr);

namespace detail {

/// Window/total accounting — an exact transcription of the fixed-step
/// loop's accumulator arithmetic (same statement order, same types), so
/// every engine built on it stays bit-identical to the oracle.  `rate` is
/// the slot's delivered rate for RunResult::avg_rate_gbps; fixed-rate
/// flushes still derive throughput from up_fraction * peak, exactly as
/// the oracle does.
struct WindowTally {
  util::SimTimeUs window_start = 0;
  double power_sum = 0.0;
  double min_power = std::numeric_limits<double>::infinity();
  double min_power_all = std::numeric_limits<double>::infinity();
  int power_ok_slots = 0;
  int up_slots = 0;
  int slots = 0;
  double rate_sum = 0.0;

  double total_up = 0.0;
  int total_slots = 0;
  double total_rate = 0.0;

  void add_slot(double power, bool up, double sensitivity, double rate) {
    ++slots;
    ++total_slots;
    min_power_all = std::min(min_power_all, power);
    if (power >= sensitivity) ++power_ok_slots;
    if (up) {
      ++up_slots;
      total_up += 1.0;
      power_sum += power;
      min_power = std::min(min_power, power);
    }
    rate_sum += rate;
    total_rate += rate;
  }

  /// True when the slot ending at `now` closes a window (the oracle's
  /// flush predicate, verbatim).
  bool window_closes(util::SimTimeUs now, util::SimTimeUs step,
                     util::SimTimeUs window, util::SimTimeUs duration) const {
    return (now + step) % window < step || now + step >= duration;
  }

  WindowSample flush(const motion::MotionProfile& profile, util::SimTimeUs now,
                     util::SimTimeUs step, util::SimTimeUs window,
                     double peak_rate_gbps, bool rate_adaptive) {
    WindowSample sample;
    sample.t_s = util::us_to_s(window_start);
    const motion::Speeds speeds =
        motion::measure_speeds(profile, window_start + window / 2);
    sample.linear_speed_mps = speeds.linear_mps;
    sample.angular_speed_rps = speeds.angular_rps;
    sample.up_fraction =
        slots > 0 ? static_cast<double>(up_slots) / slots : 0.0;
    sample.throughput_gbps =
        rate_adaptive ? (slots > 0 ? rate_sum / slots : 0.0)
                      : sample.up_fraction * peak_rate_gbps;
    sample.avg_power_dbm =
        up_slots > 0 ? power_sum / up_slots
                     : -std::numeric_limits<double>::infinity();
    sample.min_power_dbm =
        up_slots > 0 ? min_power : -std::numeric_limits<double>::infinity();
    sample.min_power_all_dbm =
        slots > 0 ? min_power_all : -std::numeric_limits<double>::infinity();
    sample.power_ok_fraction =
        slots > 0 ? static_cast<double>(power_ok_slots) / slots : 0.0;

    window_start = now + step;
    power_sum = 0.0;
    min_power = std::numeric_limits<double>::infinity();
    min_power_all = std::numeric_limits<double>::infinity();
    power_ok_slots = 0;
    up_slots = 0;
    slots = 0;
    rate_sum = 0.0;
    return sample;
  }

  void finalize(RunResult& result) const {
    result.total_up_fraction =
        total_slots > 0 ? total_up / total_slots : 0.0;
    result.avg_rate_gbps = total_slots > 0 ? total_rate / total_slots : 0.0;
  }
};

/// Hoisted session-plane metric handles; null members when no registry
/// was passed (or the build has CYCLOPS_OBS=OFF).
struct SessionMetrics {
  obs::Counter* realignments = nullptr;
  obs::Counter* tp_failures = nullptr;
  obs::Histogram* realign_latency_us = nullptr;
  obs::Histogram* link_off_us = nullptr;

  explicit SessionMetrics(obs::Registry* registry) {
    if constexpr (obs::kEnabled) {
      if (registry != nullptr) {
        realignments = &registry->counter("session_realignments_total");
        tp_failures = &registry->counter("session_tp_failures_total");
        realign_latency_us = &registry->histogram(
            "session_realign_latency_us", obs::HistogramSpec::duration_us());
        link_off_us = &registry->histogram("session_link_off_us",
                                           obs::HistogramSpec::duration_us());
      }
    }
  }
};

/// State shared by the exact-timing session processes (single-TX closed
/// loop).  The plant — applied voltages and SFP state machine — now lives
/// inside the phy::FsoChannel.
struct SessionState {
  sim::Prototype& proto;
  core::TpController& controller;
  const motion::MotionProfile& profile;
  const SimOptions& options;
  SessionLog* log;
  SessionMetrics metrics;
  phy::FsoChannel& channel;

  std::deque<core::PendingCommand> pending;
  util::SimTimeUs duration = 0;

  RunResult result;
  WindowTally tally;

  // Link-down span tracking for the session_link_off_us histogram
  // (-1 until the first sampled slot fixes the initial state).
  int prev_up = -1;
  util::SimTimeUs down_since = 0;

  /// Applies every command whose settle completed by `now`, logging each
  /// at its exact apply instant (not the sampling slot).
  void drain_commands(util::SimTimeUs now) {
    while (!pending.empty() && now >= pending.front().apply_time) {
      channel.set_voltages(pending.front().voltages);
      if (log) {
        log->on_event(pending.front().apply_time,
                      SessionEventKind::kRealignment);
      }
      pending.pop_front();
    }
  }
};

/// VRH-T process: captures a (noisy, jittered-cadence) report at its
/// exact capture time, runs the TP controller, and schedules the command
/// application at the controller's exact DAQ+settle completion time.
class TrackerProcess final : public event::Process {
 public:
  TrackerProcess(SessionState& s, event::ProcessId plant)
      : s_(s), plant_(plant) {}

  void handle(event::Scheduler& sched, const event::Event&) override;

  void set_self(event::ProcessId self) { self_ = self; }
  const char* name() const noexcept override { return "tracker"; }

 private:
  SessionState& s_;
  event::ProcessId plant_;
  event::ProcessId self_ = event::kNoProcess;
};

/// Plant process: kEvApplyCommand events land here at their exact
/// completion times and drain into the channel's applied voltages.
class PlantProcess final : public event::Process {
 public:
  explicit PlantProcess(SessionState& s) : s_(s) {}

  void handle(event::Scheduler& sched, const event::Event&) override {
    s_.drain_commands(sched.now());
  }

  const char* name() const noexcept override { return "plant"; }

 private:
  SessionState& s_;
};

/// Periodic link sampler: the only fixed-cadence process left — the
/// optics must be integrated over the continuous rig motion, and the
/// physics step is that quadrature.  Window flushing matches the oracle
/// loop so WindowSamples stay comparable.
class SamplerProcess final : public event::Process {
 public:
  explicit SamplerProcess(SessionState& s) : s_(s) {}

  void handle(event::Scheduler& sched, const event::Event&) override;

  void set_self(event::ProcessId self) { self_ = self; }
  const char* name() const noexcept override { return "sampler"; }

 private:
  SessionState& s_;
  event::ProcessId self_ = event::kNoProcess;
};

/// The quantized (bit-exact) engine behind run_link_simulation's kEvent
/// default.
RunResult run_link_simulation_event(sim::Prototype& proto,
                                    core::TpController& controller,
                                    const motion::MotionProfile& profile,
                                    const SimOptions& options);

}  // namespace detail
}  // namespace cyclops::link

#include "link/slot_eval.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "link/event_eval.hpp"
#include "obs/config.hpp"

namespace cyclops::link {

double SlotEvalResult::scattered_fraction(int threshold) const {
  int scattered = 0;
  int total = 0;
  for (int n : off_per_dirty_frame) {
    total += n;
    if (n < threshold) scattered += n;
  }
  // No off-slots means nothing is scattered.
  return total > 0 ? static_cast<double>(scattered) / total : 0.0;
}

SlotEvalResult evaluate_trace(const motion::Trace& trace,
                              const SlotEvalConfig& config) {
  return config.engine == EvalEngine::kEvent
             ? evaluate_trace_events(trace, config)
             : evaluate_trace_fixed_step(trace, config);
}

SlotEvalResult evaluate_trace(const motion::Trace& trace,
                              const SlotEvalConfig& config,
                              const runtime::Context& ctx) {
  return config.engine == EvalEngine::kEvent
             ? evaluate_trace_events(trace, config, nullptr, nullptr,
                                     &ctx.registry())
             : evaluate_trace_fixed_step(trace, config);
}

SlotEvalResult evaluate_trace_fixed_step(const motion::Trace& trace,
                                         const SlotEvalConfig& config) {
  SlotEvalResult result;
  if (trace.samples.size() < 2) return result;

  // Off-slots are only ever consumed per 30-slot frame, so keep running
  // frame counters instead of materializing a slot bitmap.
  int slots_in_frame = 0;
  int off_in_frame = 0;
  const auto flush_frame = [&result, &slots_in_frame, &off_in_frame] {
    if (off_in_frame > 0) result.off_per_dirty_frame.push_back(off_in_frame);
    result.off_slots += off_in_frame;
    slots_in_frame = 0;
    off_in_frame = 0;
  };

  // Walk report intervals; within each, drift grows linearly from the
  // residual TP error after the realignment completes.
  for (std::size_t i = 1; i < trace.samples.size(); ++i) {
    const auto& prev = trace.samples[i - 1];
    const auto& cur = trace.samples[i];
    detail::IntervalModel model;
    model.gap_ms = util::us_to_ms(cur.time - prev.time);
    if (model.gap_ms <= 0.0) continue;
    model.lat_rate =
        geom::translation_distance(prev.pose, cur.pose) / model.gap_ms;
    model.ang_rate =
        geom::rotation_distance(prev.pose, cur.pose) / model.gap_ms;
    model.config = &config;

    const int slots =
        std::max(1, static_cast<int>(model.gap_ms / config.slot_ms));
    for (int s = 0; s < slots; ++s) {
      ++result.total_slots;
      if (model.off_at(s)) ++off_in_frame;
      if (++slots_in_frame == detail::kFrameSlots) flush_frame();
    }
  }
  if (slots_in_frame > 0) flush_frame();
  return result;
}

DatasetEvalResult evaluate_dataset(const std::vector<motion::Trace>& traces,
                                   const SlotEvalConfig& config,
                                   util::ThreadPool& pool,
                                   obs::Registry* registry) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  if (config.engine == EvalEngine::kFixedStep) registry = nullptr;

  // Fan the per-trace evaluations out over the pool (one engine per
  // trace, each writing only its own slot), then merge in trace order so
  // counters and the pooled frame histogram match the serial path exactly.
  // Metrics follow the same discipline: each chunk records into its own
  // registry shard (chunk ranges are static for a given n and chunk
  // count, and metric updates are integer adds), and the shards fold into
  // `registry` in chunk order below — bit-identical at any thread count.
  //
  // Chunk geometry: several chunks per executor, pulled from the pool's
  // atomic dispenser, so a straggler trace can't idle the other workers
  // (500 traces in thread_count chunks left workers stalled on the
  // slowest chunk).  Each slot is cache-line aligned: adjacent traces
  // finish on different threads at chunk boundaries, and 64-byte padding
  // keeps their result writes from false-sharing a line.
  struct alignas(64) PerTrace {
    SlotEvalResult result;
    std::uint64_t events = 0;
  };
  const std::size_t chunks =
      std::min(traces.size(), 4 * pool.thread_count());
  std::vector<PerTrace> per_trace(traces.size());
  obs::ShardedRegistry shards(registry != nullptr ? std::max<std::size_t>(
                                                        1, chunks)
                                                  : 1);
  pool.run_chunked(
      traces.size(), chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        obs::Registry* shard =
            registry != nullptr ? &shards.shard(chunk) : nullptr;
        for (std::size_t i = begin; i < end; ++i) {
          PerTrace out;
          if (config.engine == EvalEngine::kEvent) {
            EventEvalStats stats;
            out.result =
                evaluate_trace_events(traces[i], config, &stats, nullptr,
                                      shard);
            out.events = stats.dispatched;
          } else {
            out.result = evaluate_trace_fixed_step(traces[i], config);
          }
          per_trace[i] = std::move(out);
        }
      });
  if (registry != nullptr) shards.merge_into(*registry);

  DatasetEvalResult result;
  result.per_trace_off_fraction.reserve(traces.size());
  for (const PerTrace& p : per_trace) {
    const SlotEvalResult& r = p.result;
    result.per_trace_off_fraction.push_back(r.off_fraction());
    result.pooled.total_slots += r.total_slots;
    result.pooled.off_slots += r.off_slots;
    result.pooled.off_per_dirty_frame.insert(
        result.pooled.off_per_dirty_frame.end(), r.off_per_dirty_frame.begin(),
        r.off_per_dirty_frame.end());
    result.events += p.events;
  }
  return result;
}

DatasetEvalResult evaluate_dataset(const std::vector<motion::Trace>& traces,
                                   const SlotEvalConfig& config,
                                   const runtime::Context& ctx) {
  return evaluate_dataset(traces, config, ctx.pool(), &ctx.registry());
}

}  // namespace cyclops::link

#include "link/slot_eval.hpp"

#include <algorithm>
#include <cmath>

namespace cyclops::link {

double SlotEvalResult::scattered_fraction(int threshold) const {
  int scattered = 0;
  int total = 0;
  for (int n : off_per_dirty_frame) {
    total += n;
    if (n < threshold) scattered += n;
  }
  // No off-slots means nothing is scattered.
  return total > 0 ? static_cast<double>(scattered) / total : 0.0;
}

SlotEvalResult evaluate_trace(const motion::Trace& trace,
                              const SlotEvalConfig& config) {
  SlotEvalResult result;
  if (trace.samples.size() < 2) return result;

  // Off-slots are only ever consumed per 30-slot frame, so keep running
  // frame counters instead of materializing a slot bitmap.
  constexpr int kFrameSlots = 30;
  int slots_in_frame = 0;
  int off_in_frame = 0;
  const auto flush_frame = [&result, &slots_in_frame, &off_in_frame] {
    if (off_in_frame > 0) result.off_per_dirty_frame.push_back(off_in_frame);
    result.off_slots += off_in_frame;
    slots_in_frame = 0;
    off_in_frame = 0;
  };

  // Walk report intervals; within each, drift grows linearly from the
  // residual TP error after the realignment completes.
  for (std::size_t i = 1; i < trace.samples.size(); ++i) {
    const auto& prev = trace.samples[i - 1];
    const auto& cur = trace.samples[i];
    const double gap_ms = util::us_to_ms(cur.time - prev.time);
    if (gap_ms <= 0.0) continue;

    const double lat_rate =
        geom::translation_distance(prev.pose, cur.pose) / gap_ms;  // m/ms
    const double ang_rate =
        geom::rotation_distance(prev.pose, cur.pose) / gap_ms;  // rad/ms

    const int slots = std::max(1, static_cast<int>(gap_ms / config.slot_ms));
    for (int s = 0; s < slots; ++s) {
      const double t_ms = (s + 1) * config.slot_ms;
      double lat_err, ang_err;
      if (t_ms <= config.tp_latency_ms) {
        // Realignment for the report at the interval start hasn't landed:
        // drift continues on top of the previous interval's budget.  Use a
        // conservative carry-over of one full interval of drift.
        lat_err = config.residual_lateral_m + lat_rate * (gap_ms + t_ms);
        ang_err = config.residual_angular_rad + ang_rate * (gap_ms + t_ms);
      } else {
        lat_err = config.residual_lateral_m + lat_rate * t_ms;
        ang_err = config.residual_angular_rad + ang_rate * t_ms;
      }
      const bool off = lat_err > config.lateral_tolerance_m ||
                       ang_err > config.angular_tolerance_rad;
      ++result.total_slots;
      if (off) ++off_in_frame;
      if (++slots_in_frame == kFrameSlots) flush_frame();
    }
  }
  if (slots_in_frame > 0) flush_frame();
  return result;
}

DatasetEvalResult evaluate_dataset(const std::vector<motion::Trace>& traces,
                                   const SlotEvalConfig& config,
                                   util::ThreadPool& pool) {
  // Fan the per-trace evaluations out over the pool (each writes only its
  // own slot), then merge in trace order so counters and the pooled frame
  // histogram match the serial path exactly.
  const std::vector<SlotEvalResult> per_trace =
      util::parallel_map<SlotEvalResult>(
          traces.size(),
          [&](std::size_t i) { return evaluate_trace(traces[i], config); },
          pool);

  DatasetEvalResult result;
  result.per_trace_off_fraction.reserve(traces.size());
  for (const SlotEvalResult& r : per_trace) {
    result.per_trace_off_fraction.push_back(r.off_fraction());
    result.pooled.total_slots += r.total_slots;
    result.pooled.off_slots += r.off_slots;
    result.pooled.off_per_dirty_frame.insert(
        result.pooled.off_per_dirty_frame.end(), r.off_per_dirty_frame.begin(),
        r.off_per_dirty_frame.end());
  }
  return result;
}

}  // namespace cyclops::link

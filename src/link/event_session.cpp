#include "link/event_session.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>

#include "core/exhaustive_aligner.hpp"
#include "obs/config.hpp"

namespace cyclops::link {
namespace {

/// Hoisted session-plane metric handles; null members when no registry
/// was passed (or the build has CYCLOPS_OBS=OFF).
struct SessionMetrics {
  obs::Counter* realignments = nullptr;
  obs::Counter* tp_failures = nullptr;
  obs::Histogram* realign_latency_us = nullptr;
  obs::Histogram* link_off_us = nullptr;

  explicit SessionMetrics(obs::Registry* registry) {
    if constexpr (obs::kEnabled) {
      if (registry != nullptr) {
        realignments = &registry->counter("session_realignments_total");
        tp_failures = &registry->counter("session_tp_failures_total");
        realign_latency_us = &registry->histogram(
            "session_realign_latency_us", obs::HistogramSpec::duration_us());
        link_off_us = &registry->histogram("session_link_off_us",
                                           obs::HistogramSpec::duration_us());
      }
    }
  }
};

/// State shared by the session processes (single-TX closed loop).
struct SessionState {
  sim::Prototype& proto;
  core::TpController& controller;
  const motion::MotionProfile& profile;
  const SimOptions& options;
  SessionLog* log;
  SessionMetrics metrics;

  LinkStateMachine link_state;
  sim::Voltages applied{};
  std::deque<core::PendingCommand> pending;
  util::SimTimeUs duration = 0;

  RunResult result;

  // Window accumulators (mirrors run_link_simulation's bookkeeping).
  util::SimTimeUs window_start = 0;
  double window_power_sum = 0.0;
  double window_min_power = std::numeric_limits<double>::infinity();
  double window_min_power_all = std::numeric_limits<double>::infinity();
  int window_power_ok_slots = 0;
  int window_up_slots = 0;
  int window_slots = 0;
  double total_up = 0.0;
  int total_slots = 0;

  // Link-down span tracking for the session_link_off_us histogram
  // (-1 until the first sampled slot fixes the initial state).
  int prev_up = -1;
  util::SimTimeUs down_since = 0;

  /// Applies every command whose settle completed by `now`, logging each
  /// at its exact apply instant (not the sampling slot).
  void drain_commands(util::SimTimeUs now) {
    while (!pending.empty() && now >= pending.front().apply_time) {
      applied = pending.front().voltages;
      if (log) {
        log->on_event(pending.front().apply_time,
                      SessionEventKind::kRealignment);
      }
      pending.pop_front();
    }
  }
};

/// VRH-T process: captures a (noisy, jittered-cadence) report at its
/// exact capture time, runs the TP controller, and schedules the command
/// application at the controller's exact DAQ+settle completion time.
class TrackerProcess final : public event::Process {
 public:
  TrackerProcess(SessionState& s, event::ProcessId plant) : s_(s), plant_(plant) {}

  void handle(event::Scheduler& sched, const event::Event&) override {
    const util::SimTimeUs now = sched.now();
    const geom::Pose pose = s_.profile.pose_at(now);
    const util::SimTimeUs lag =
        util::us_from_ms(s_.proto.tracker.config().position_lag_ms);
    const geom::Pose lagged = s_.profile.pose_at(now > lag ? now - lag : 0);
    const tracking::PoseReport report =
        s_.proto.tracker.report(now, pose, lagged);
    if (!report.lost) {
      if (auto cmd = s_.controller.on_report(report)) {
        ++s_.result.realignments;
        s_.pending.push_back(*cmd);
        event::Event apply;
        apply.time = std::max(now, cmd->apply_time);
        apply.type = kEvApplyCommand;
        apply.target = plant_;
        sched.schedule(apply);
        if constexpr (obs::kEnabled) {
          if (s_.metrics.realignments != nullptr) {
            s_.metrics.realignments->inc();
            s_.metrics.realign_latency_us->record(
                static_cast<double>(apply.time - now));
          }
        }
      } else {
        if (s_.log) {
          s_.log->on_event(report.delivery_time, SessionEventKind::kTpFailure);
        }
        if constexpr (obs::kEnabled) {
          if (s_.metrics.tp_failures != nullptr) s_.metrics.tp_failures->inc();
        }
      }
    }
    const util::SimTimeUs next = s_.proto.tracker.next_capture_time(now);
    if (next < s_.duration) {
      event::Event capture;
      capture.time = next;
      capture.type = kEvReportCapture;
      capture.target = self_;
      sched.schedule(capture);
    }
  }

  void set_self(event::ProcessId self) { self_ = self; }
  const char* name() const noexcept override { return "tracker"; }

 private:
  SessionState& s_;
  event::ProcessId plant_;
  event::ProcessId self_ = event::kNoProcess;
};

/// Plant process: owns the applied GM voltages; kEvApplyCommand events
/// land here at their exact completion times.
class PlantProcess final : public event::Process {
 public:
  explicit PlantProcess(SessionState& s) : s_(s) {}

  void handle(event::Scheduler& sched, const event::Event&) override {
    s_.drain_commands(sched.now());
  }

  const char* name() const noexcept override { return "plant"; }

 private:
  SessionState& s_;
};

/// Periodic SFP/link sampler: the only fixed-cadence process left — the
/// optics must be integrated over the continuous rig motion, and the
/// physics step is that quadrature.  Window flushing matches the legacy
/// loop so WindowSamples stay comparable.
class SamplerProcess final : public event::Process {
 public:
  explicit SamplerProcess(SessionState& s) : s_(s) {}

  void handle(event::Scheduler& sched, const event::Event&) override {
    const util::SimTimeUs now = sched.now();
    // Ties between an apply event and a slot at the same microsecond must
    // resolve apply-first (the legacy loop applies before sampling).
    s_.drain_commands(now);
    s_.proto.scene.set_rig_pose(s_.profile.pose_at(now));
    const double power = s_.proto.scene.received_power_dbm(s_.applied);
    const bool up = s_.link_state.step(now, power);
    if (s_.options.on_slot) s_.options.on_slot(now, up, power);
    if (s_.log) s_.log->on_slot(now, up, power);
    if constexpr (obs::kEnabled) {
      if (s_.metrics.link_off_us != nullptr) {
        // Contiguous down spans, measured slot-edge to slot-edge.
        if (s_.prev_up != 0 && !up) s_.down_since = now;
        if (s_.prev_up == 0 && up) {
          s_.metrics.link_off_us->record(static_cast<double>(now - s_.down_since));
        }
        s_.prev_up = up ? 1 : 0;
      }
    }

    const optics::SfpSpec& sfp = s_.proto.scene.config().sfp;
    ++s_.window_slots;
    ++s_.total_slots;
    s_.window_min_power_all = std::min(s_.window_min_power_all, power);
    if (power >= sfp.rx_sensitivity_dbm) ++s_.window_power_ok_slots;
    if (up) {
      ++s_.window_up_slots;
      s_.total_up += 1.0;
      s_.window_power_sum += power;
      s_.window_min_power = std::min(s_.window_min_power, power);
    }

    const util::SimTimeUs step = s_.options.step;
    if ((now + step) % s_.options.window < step || now + step >= s_.duration) {
      flush_window(now);
    }
    if (now + step < s_.duration) {
      event::Event slot;
      slot.time = now + step;
      slot.type = kEvSlotSample;
      slot.target = self_;
      sched.schedule(slot);
    }
  }

  void set_self(event::ProcessId self) { self_ = self; }
  const char* name() const noexcept override { return "sampler"; }

 private:
  void flush_window(util::SimTimeUs now) {
    WindowSample sample;
    sample.t_s = util::us_to_s(s_.window_start);
    const motion::Speeds speeds = motion::measure_speeds(
        s_.profile, s_.window_start + s_.options.window / 2);
    sample.linear_speed_mps = speeds.linear_mps;
    sample.angular_speed_rps = speeds.angular_rps;
    sample.up_fraction =
        s_.window_slots > 0
            ? static_cast<double>(s_.window_up_slots) / s_.window_slots
            : 0.0;
    sample.throughput_gbps =
        sample.up_fraction * s_.proto.scene.config().sfp.goodput_gbps;
    sample.avg_power_dbm =
        s_.window_up_slots > 0
            ? s_.window_power_sum / s_.window_up_slots
            : -std::numeric_limits<double>::infinity();
    sample.min_power_dbm =
        s_.window_up_slots > 0
            ? s_.window_min_power
            : -std::numeric_limits<double>::infinity();
    sample.min_power_all_dbm =
        s_.window_slots > 0
            ? s_.window_min_power_all
            : -std::numeric_limits<double>::infinity();
    sample.power_ok_fraction =
        s_.window_slots > 0
            ? static_cast<double>(s_.window_power_ok_slots) / s_.window_slots
            : 0.0;
    s_.result.windows.push_back(sample);

    s_.window_start = now + s_.options.step;
    s_.window_power_sum = 0.0;
    s_.window_min_power = std::numeric_limits<double>::infinity();
    s_.window_min_power_all = std::numeric_limits<double>::infinity();
    s_.window_power_ok_slots = 0;
    s_.window_up_slots = 0;
    s_.window_slots = 0;
  }

  SessionState& s_;
  event::ProcessId self_ = event::kNoProcess;
};

/// Shared body of the two public overloads.  `ctx` (nullable) selects the
/// session-context mode: scheduler on ctx->clock() (reset first) and the
/// start-up alignment polish on ctx->pool().
RunResult run_link_session_events_impl(sim::Prototype& proto,
                                       core::TpController& controller,
                                       const motion::MotionProfile& profile,
                                       const SimOptions& options,
                                       SessionLog* log,
                                       EventSessionStats* stats,
                                       obs::Registry* registry,
                                       const runtime::Context* ctx) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  const optics::SfpSpec& sfp = proto.scene.config().sfp;
  SessionState s{proto,
                 controller,
                 profile,
                 options,
                 log,
                 SessionMetrics(registry),
                 LinkStateMachine(sfp.rx_sensitivity_dbm,
                                  util::us_from_s(sfp.link_up_delay_s)),
                 {},
                 {},
                 {},
                 {}};
  s.duration = util::us_from_s(profile.duration_s());

  proto.scene.set_rig_pose(profile.pose_at(0));
  if (options.align_at_start) {
    // §5.3 protocol: each run starts from an aligned link.
    const core::PointingResult initial = controller.solver().solve(
        proto.tracker.ideal_report(proto.scene.rig_pose()), s.applied);
    s.applied = initial.voltages;
    const core::ExhaustiveAligner polish =
        ctx != nullptr ? core::ExhaustiveAligner({}, *ctx)
                       : core::ExhaustiveAligner();
    s.applied = polish.align(proto.scene, s.applied).voltages;
    s.link_state.force_up();
  }
  proto.tracker.reset_schedule();  // simulation time restarts at 0

  std::optional<event::Scheduler> sched_storage;
  if (ctx != nullptr) {
    ctx->clock().reset();  // the context clock becomes this session's t=0
    sched_storage.emplace(ctx->clock());
  } else {
    sched_storage.emplace();
  }
  event::Scheduler& sched = *sched_storage;
  event::EventCounter counter;
  sched.add_hook(&counter);

  PlantProcess plant(s);
  const event::ProcessId plant_id = sched.add_process(&plant);
  TrackerProcess tracker(s, plant_id);
  const event::ProcessId tracker_id = sched.add_process(&tracker);
  tracker.set_self(tracker_id);
  SamplerProcess sampler(s);
  const event::ProcessId sampler_id = sched.add_process(&sampler);
  sampler.set_self(sampler_id);

  // Seed the chains.  The tracker's first capture is scheduled before the
  // first slot so an equal-time tie dispatches report-before-sample, as
  // the legacy loop orders them.
  const util::SimTimeUs first_capture = proto.tracker.next_capture_time(0);
  if (first_capture < s.duration) {
    event::Event capture;
    capture.time = first_capture;
    capture.type = kEvReportCapture;
    capture.target = tracker_id;
    sched.schedule(capture);
  }
  if (s.duration > 0) {
    event::Event slot;
    slot.time = 0;
    slot.type = kEvSlotSample;
    slot.target = sampler_id;
    sched.schedule(slot);
  }
  sched.run();

  s.result.total_up_fraction =
      s.total_slots > 0 ? s.total_up / s.total_slots : 0.0;
  s.result.tp_failures = controller.failures();
  s.result.avg_pointing_iterations = controller.avg_pointing_iterations();
  if (log) log->finish(s.result);
  if (stats) {
    stats->events = sched.dispatched();
    stats->scheduled = sched.scheduled();
  }
  if (registry != nullptr) {
    registry->counter("session_slots_total")
        .inc(static_cast<std::uint64_t>(s.total_slots));
    registry->counter("session_events_dispatched_total")
        .inc(sched.dispatched());
  }
  return s.result;
}

}  // namespace

RunResult run_link_session_events(sim::Prototype& proto,
                                  core::TpController& controller,
                                  const motion::MotionProfile& profile,
                                  const SimOptions& options, SessionLog* log,
                                  EventSessionStats* stats,
                                  obs::Registry* registry) {
  return run_link_session_events_impl(proto, controller, profile, options, log,
                                      stats, registry, nullptr);
}

RunResult run_link_session_events(sim::Prototype& proto,
                                  core::TpController& controller,
                                  const motion::MotionProfile& profile,
                                  const runtime::Context& ctx,
                                  const SimOptions& options, SessionLog* log,
                                  EventSessionStats* stats) {
  return run_link_session_events_impl(proto, controller, profile, options, log,
                                      stats, &ctx.registry(), &ctx);
}

HandoverProcess::HandoverProcess(std::size_t num_tx, HandoverConfig config,
                                 event::Scheduler& sched,
                                 const runtime::Context& ctx, SessionLog* log)
    : HandoverProcess(num_tx, config, sched, log, &ctx.registry()) {}

HandoverProcess::HandoverProcess(std::size_t num_tx, HandoverConfig config,
                                 event::Scheduler& sched, SessionLog* log,
                                 obs::Registry* registry)
    : config_(config), num_tx_(num_tx), sched_(sched), log_(log) {
  self_ = sched_.add_process(this);
  if constexpr (obs::kEnabled) {
    if (registry != nullptr) {
      m_started_ = &registry->counter("handover_started_total");
      m_switches_ = &registry->counter("handover_switches_total");
      m_cancelled_ = &registry->counter("handover_cancelled_total");
      m_switch_us_ = &registry->histogram("handover_switch_us",
                                          obs::HistogramSpec::duration_us());
      m_reacq_us_ = &registry->histogram("handover_reacq_us",
                                         obs::HistogramSpec::duration_us());
    }
  }
}

int HandoverProcess::on_powers(std::span<const double> powers_dbm) {
  assert(powers_dbm.size() == num_tx_);
  if (num_tx_ == 0) return -1;
  const util::SimTimeUs now = sched_.now();

  if (switch_pending_) {
    const double active_power = powers_dbm[static_cast<std::size_t>(active_)];
    if (config_.cancel_on_reacquire && switch_drop_triggered_ &&
        active_power >= config_.drop_threshold_dbm &&
        sched_.cancel(switch_timer_)) {
      switch_pending_ = false;
      ++cancelled_;
      if constexpr (obs::kEnabled) {
        if (m_cancelled_ != nullptr) {
          m_cancelled_->inc();
          m_reacq_us_->record(static_cast<double>(now - switch_started_at_));
        }
      }
      if (log_) {
        log_->on_event(now, SessionEventKind::kReacquisition, active_power);
      }
      return active_;
    }
    return -1;
  }

  const auto best_it =
      std::max_element(powers_dbm.begin(), powers_dbm.end());
  const int best = static_cast<int>(best_it - powers_dbm.begin());
  const double active_power = powers_dbm[static_cast<std::size_t>(active_)];
  const bool active_lost = active_power < config_.drop_threshold_dbm;
  const bool better = *best_it > active_power + config_.hysteresis_db;

  if (best != active_ && (active_lost || better)) {
    ++started_;
    if constexpr (obs::kEnabled) {
      if (m_started_ != nullptr) m_started_->inc();
    }
    if (config_.switch_delay_s <= 0.0) {
      // Instant switch: matches the legacy manager, which is immediately
      // out of the switching state when the delay is zero.
      active_ = best;
      if constexpr (obs::kEnabled) {
        if (m_switches_ != nullptr) {
          m_switches_->inc();
          m_switch_us_->record(0.0);
        }
      }
      if (log_) log_->on_event(now, SessionEventKind::kHandover, *best_it);
      return active_;
    }
    switch_started_at_ = now;
    switch_pending_ = true;
    switch_drop_triggered_ = active_lost;
    pending_target_ = best;
    event::Event done;
    done.type = kEvSwitchDone;
    done.target = self_;
    done.i64 = best;
    done.f64 = *best_it;
    switch_timer_ =
        sched_.schedule_after(util::us_from_s(config_.switch_delay_s), done);
    return -1;
  }
  return active_;
}

void HandoverProcess::handle(event::Scheduler& sched, const event::Event& ev) {
  assert(ev.type == kEvSwitchDone);
  active_ = pending_target_;
  switch_pending_ = false;
  if constexpr (obs::kEnabled) {
    if (m_switches_ != nullptr) {
      m_switches_->inc();
      m_switch_us_->record(static_cast<double>(sched.now() - switch_started_at_));
    }
  }
  if (log_) {
    log_->on_event(sched.now(), SessionEventKind::kHandover, ev.f64);
  }
}

}  // namespace cyclops::link

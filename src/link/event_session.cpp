#include "link/event_session.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <optional>

#include "core/exhaustive_aligner.hpp"
#include "obs/config.hpp"
#include "session/lifecycle.hpp"

namespace cyclops::link {
namespace {

// The session processes (detail::TrackerProcess / PlantProcess /
// SamplerProcess) and their shared SessionState live in
// link/session_core.{hpp,cpp}; this translation unit wires them into the
// exact-timing discipline: jittered capture events and DAQ+settle applies
// at their exact microseconds.

/// Shared body of the two public overloads.  `ctx` (nullable) selects the
/// session-context mode: scheduler on ctx->clock() (reset first) and the
/// start-up alignment polish on ctx->pool().
RunResult run_link_session_events_impl(sim::Prototype& proto,
                                       core::TpController& controller,
                                       const motion::MotionProfile& profile,
                                       const SimOptions& options,
                                       SessionLog* log,
                                       EventSessionStats* stats,
                                       obs::Registry* registry,
                                       const runtime::Context* ctx) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  phy::FsoChannel channel(proto.scene);
  detail::SessionState s{proto,
                         controller,
                         profile,
                         options,
                         log,
                         detail::SessionMetrics(registry),
                         channel};
  s.duration = util::us_from_s(profile.duration_s());

  proto.scene.set_rig_pose(profile.pose_at(0));
  if (options.align_at_start) {
    // §5.3 protocol: each run starts from an aligned link.
    const core::PointingResult initial = controller.solver().solve(
        proto.tracker.ideal_report(proto.scene.rig_pose()),
        channel.voltages());
    const core::ExhaustiveAligner polish =
        ctx != nullptr ? core::ExhaustiveAligner({}, *ctx)
                       : core::ExhaustiveAligner();
    channel.set_voltages(
        polish.align(proto.scene, initial.voltages).voltages);
    channel.force_up();
  }
  proto.tracker.reset_schedule();  // simulation time restarts at 0

  // Unified lifecycle: with a context, its clock (reset) is the session
  // timeline; either way the scheduler comes from the session layer so a
  // bound fleet Workspace can reuse one event slab across sessions.
  session::ScopedScheduler lease(session::bind_session_clock(ctx));
  event::Scheduler& sched = lease.get();
  event::EventCounter counter;
  sched.add_hook(&counter);

  detail::PlantProcess plant(s);
  const event::ProcessId plant_id = sched.add_process(&plant);
  detail::TrackerProcess tracker(s, plant_id);
  const event::ProcessId tracker_id = sched.add_process(&tracker);
  tracker.set_self(tracker_id);
  detail::SamplerProcess sampler(s);
  const event::ProcessId sampler_id = sched.add_process(&sampler);
  sampler.set_self(sampler_id);

  // Seed the chains.  The tracker's first capture is scheduled before the
  // first slot so an equal-time tie dispatches report-before-sample, as
  // the legacy loop orders them.
  const util::SimTimeUs first_capture = proto.tracker.next_capture_time(0);
  if (first_capture < s.duration) {
    event::Event capture;
    capture.time = first_capture;
    capture.type = kEvReportCapture;
    capture.target = tracker_id;
    sched.schedule(capture);
  }
  if (s.duration > 0) {
    event::Event slot;
    slot.time = 0;
    slot.type = kEvSlotSample;
    slot.target = sampler_id;
    sched.schedule(slot);
  }
  sched.run();

  s.tally.finalize(s.result);
  s.result.tp_failures = controller.failures();
  s.result.avg_pointing_iterations = controller.avg_pointing_iterations();
  if (log) log->finish(s.result);
  if (stats) {
    stats->events = sched.dispatched();
    stats->scheduled = sched.scheduled();
  }
  if (registry != nullptr) {
    registry->counter("session_slots_total")
        .inc(static_cast<std::uint64_t>(s.tally.total_slots));
    registry->counter("session_events_dispatched_total")
        .inc(sched.dispatched());
  }
  return s.result;
}

}  // namespace

RunResult run_link_session_events(sim::Prototype& proto,
                                  core::TpController& controller,
                                  const motion::MotionProfile& profile,
                                  const SimOptions& options, SessionLog* log,
                                  EventSessionStats* stats,
                                  obs::Registry* registry) {
  return run_link_session_events_impl(proto, controller, profile, options, log,
                                      stats, registry, nullptr);
}

RunResult run_link_session_events(sim::Prototype& proto,
                                  core::TpController& controller,
                                  const motion::MotionProfile& profile,
                                  const runtime::Context& ctx,
                                  const SimOptions& options, SessionLog* log,
                                  EventSessionStats* stats) {
  return run_link_session_events_impl(proto, controller, profile, options, log,
                                      stats, &ctx.registry(), &ctx);
}

HandoverProcess::HandoverProcess(std::size_t num_tx, HandoverConfig config,
                                 event::Scheduler& sched,
                                 const runtime::Context& ctx, SessionLog* log)
    : HandoverProcess(num_tx, config, sched, log, &ctx.registry()) {}

HandoverProcess::HandoverProcess(std::size_t num_tx, HandoverConfig config,
                                 event::Scheduler& sched, SessionLog* log,
                                 obs::Registry* registry)
    : config_(config), num_tx_(num_tx), sched_(sched), log_(log) {
  self_ = sched_.add_process(this);
  if constexpr (obs::kEnabled) {
    if (registry != nullptr) {
      m_started_ = &registry->counter("handover_started_total");
      m_switches_ = &registry->counter("handover_switches_total");
      m_cancelled_ = &registry->counter("handover_cancelled_total");
      m_switch_us_ = &registry->histogram("handover_switch_us",
                                          obs::HistogramSpec::duration_us());
      m_reacq_us_ = &registry->histogram("handover_reacq_us",
                                         obs::HistogramSpec::duration_us());
    }
  }
}

int HandoverProcess::on_powers(std::span<const double> powers_dbm) {
  assert(powers_dbm.size() == num_tx_);
  if (num_tx_ == 0) return -1;
  const util::SimTimeUs now = sched_.now();

  if (switch_pending_) {
    const double active_power = powers_dbm[static_cast<std::size_t>(active_)];
    if (config_.cancel_on_reacquire && switch_drop_triggered_ &&
        active_power >= config_.drop_threshold_dbm &&
        sched_.cancel(switch_timer_)) {
      switch_pending_ = false;
      ++cancelled_;
      if constexpr (obs::kEnabled) {
        if (m_cancelled_ != nullptr) {
          m_cancelled_->inc();
          m_reacq_us_->record(static_cast<double>(now - switch_started_at_));
        }
      }
      if (log_) {
        log_->on_event(now, SessionEventKind::kReacquisition, active_power);
      }
      return active_;
    }
    return -1;
  }

  const auto best_it =
      std::max_element(powers_dbm.begin(), powers_dbm.end());
  const int best = static_cast<int>(best_it - powers_dbm.begin());
  const double active_power = powers_dbm[static_cast<std::size_t>(active_)];
  const bool active_lost = active_power < config_.drop_threshold_dbm;
  const bool better = *best_it > active_power + config_.hysteresis_db;

  if (best != active_ && (active_lost || better)) {
    ++started_;
    if constexpr (obs::kEnabled) {
      if (m_started_ != nullptr) m_started_->inc();
    }
    if (config_.switch_delay_s <= 0.0) {
      // Instant switch: matches the legacy manager, which is immediately
      // out of the switching state when the delay is zero.
      active_ = best;
      if constexpr (obs::kEnabled) {
        if (m_switches_ != nullptr) {
          m_switches_->inc();
          m_switch_us_->record(0.0);
        }
      }
      if (log_) log_->on_event(now, SessionEventKind::kHandover, *best_it);
      return active_;
    }
    switch_started_at_ = now;
    switch_pending_ = true;
    switch_drop_triggered_ = active_lost;
    pending_target_ = best;
    event::Event done;
    done.type = kEvSwitchDone;
    done.target = self_;
    done.i64 = best;
    done.f64 = *best_it;
    switch_timer_ =
        sched_.schedule_after(util::us_from_s(config_.switch_delay_s), done);
    return -1;
  }
  return active_;
}

void HandoverProcess::handle(event::Scheduler& sched, const event::Event& ev) {
  assert(ev.type == kEvSwitchDone);
  active_ = pending_target_;
  switch_pending_ = false;
  if constexpr (obs::kEnabled) {
    if (m_switches_ != nullptr) {
      m_switches_->inc();
      m_switch_us_->record(static_cast<double>(sched.now() - switch_started_at_));
    }
  }
  if (log_) {
    log_->on_event(sched.now(), SessionEventKind::kHandover, ev.f64);
  }
}

}  // namespace cyclops::link

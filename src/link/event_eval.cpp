#include "link/event_eval.hpp"

#include <algorithm>
#include <cstddef>

#include "event/scheduler.hpp"

namespace cyclops::link {
namespace {

/// First s in [lo, hi) where `pred(s)` holds, or hi when none.  Requires
/// a monotone predicate (false... then true...), which IntervalModel
/// guarantees per region — see the off_at comment in slot_eval.hpp.
template <typename Pred>
int first_true(int lo, int hi, Pred&& pred) {
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (pred(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// Tallies link-state runs into the §5.4 result: total/off slot counters
/// plus the per-30-slot-frame off histogram, advancing frame-by-frame
/// instead of slot-by-slot.
class FrameAccountant final : public event::Process {
 public:
  void handle(event::Scheduler&, const event::Event& ev) override {
    const bool off = ev.type == kEvOffRun;
    int count = static_cast<int>(ev.i64);
    result_.total_slots += count;
    while (count > 0) {
      const int take =
          std::min(count, detail::kFrameSlots - slots_in_frame_);
      slots_in_frame_ += take;
      if (off) off_in_frame_ += take;
      if (slots_in_frame_ == detail::kFrameSlots) flush();
      count -= take;
    }
  }

  const char* name() const noexcept override { return "frame_accountant"; }

  /// Call once after the scheduler drains: flushes the final partial frame.
  SlotEvalResult finish() {
    if (slots_in_frame_ > 0) flush();
    return std::move(result_);
  }

 private:
  void flush() {
    if (off_in_frame_ > 0) result_.off_per_dirty_frame.push_back(off_in_frame_);
    result_.off_slots += off_in_frame_;
    slots_in_frame_ = 0;
    off_in_frame_ = 0;
  }

  SlotEvalResult result_;
  int slots_in_frame_ = 0;
  int off_in_frame_ = 0;
};

/// The TP/drift process: one kEvReportInterval event per trace sample.
/// For the interval it computes the drift rates, bisects for the first
/// disconnected slot in each latency region, and schedules the resulting
/// on/off runs (at their exact start times) to the frame accountant, then
/// chains the next report event.
class TraceReportProcess final : public event::Process {
 public:
  TraceReportProcess(const motion::Trace& trace, const SlotEvalConfig& config,
                     event::ProcessId accountant)
      : trace_(trace), config_(config), accountant_(accountant) {}

  void set_self(event::ProcessId self) { self_ = self; }

  void handle(event::Scheduler& sched, const event::Event& ev) override {
    const std::size_t i = static_cast<std::size_t>(ev.i64);
    const auto& prev = trace_.samples[i - 1];
    const auto& cur = trace_.samples[i];

    detail::IntervalModel model;
    model.gap_ms = util::us_to_ms(cur.time - prev.time);
    model.config = &config_;
    if (model.gap_ms > 0.0) {
      model.lat_rate =
          geom::translation_distance(prev.pose, cur.pose) / model.gap_ms;
      model.ang_rate =
          geom::rotation_distance(prev.pose, cur.pose) / model.gap_ms;

      const int slots =
          std::max(1, static_cast<int>(model.gap_ms / config_.slot_ms));
      // Carry-region boundary: slots [0, carry) still accumulate on the
      // previous interval's budget.  Both region predicates are monotone,
      // so two bisections find the exact first off slot of each region.
      const int carry = first_true(
          0, slots, [&model](int s) { return !model.in_carry(s); });
      const int off_a = first_true(
          0, carry, [&model](int s) { return model.off_at(s); });
      const int off_b = first_true(
          carry, slots, [&model](int s) { return model.off_at(s); });

      // Emit the interval as maximal same-state runs, in slot order:
      // [0,off_a) on, [off_a,carry) off, [carry,off_b) on, [off_b,slots)
      // off — with same-state neighbors (adjacent via an empty middle
      // segment, e.g. a fully-connected interval) merged into one event.
      const int bounds[5] = {0, off_a, carry, off_b, slots};
      int pend_begin = -1, pend_end = 0;
      bool pend_off = false;
      const auto emit = [&] {
        if (pend_begin < 0) return;
        event::Event run;
        run.time =
            prev.time + util::us_from_ms(pend_begin * config_.slot_ms);
        run.type = pend_off ? kEvOffRun : kEvOnRun;
        run.target = accountant_;
        run.i64 = pend_end - pend_begin;
        run.f64 = pend_off ? model.lat_rate : 0.0;
        sched.schedule(run);
      };
      for (int k = 1; k <= 4; ++k) {
        const bool off = (k % 2) == 0;  // segments alternate on/off.
        if (bounds[k] <= bounds[k - 1]) continue;
        if (pend_begin >= 0 && off == pend_off) {
          pend_end = bounds[k];  // coalesce with the previous segment
          continue;
        }
        emit();
        pend_begin = bounds[k - 1];
        pend_end = bounds[k];
        pend_off = off;
      }
      emit();
    }

    if (i + 1 < trace_.samples.size()) {
      event::Event next;
      // Clamp for traces with non-increasing timestamps (the fixed-step
      // engine tolerates them by skipping the interval; we must not
      // schedule into the past).
      next.time = std::max(sched.now(), trace_.samples[i].time);
      next.type = kEvReportInterval;
      next.target = self_;
      next.i64 = static_cast<std::int64_t>(i + 1);
      sched.schedule(next);
    }
  }

  const char* name() const noexcept override { return "trace_report"; }

 private:
  const motion::Trace& trace_;
  const SlotEvalConfig& config_;
  event::ProcessId accountant_;
  event::ProcessId self_ = event::kNoProcess;
};

}  // namespace

SlotEvalResult evaluate_trace_events(const motion::Trace& trace,
                                     const SlotEvalConfig& config,
                                     EventEvalStats* stats,
                                     event::TraceHook* extra_hook) {
  if (trace.samples.size() < 2) return {};

  event::Scheduler sched;
  if (extra_hook) sched.add_hook(extra_hook);

  FrameAccountant accountant;
  const event::ProcessId acc_id = sched.add_process(&accountant);
  TraceReportProcess reporter(trace, config, acc_id);
  const event::ProcessId reporter_id = sched.add_process(&reporter);
  reporter.set_self(reporter_id);

  event::Event first;
  first.time = trace.samples.front().time;
  first.type = kEvReportInterval;
  first.target = reporter_id;
  first.i64 = 1;
  sched.schedule(first);
  sched.run();

  if (stats) {
    stats->dispatched = sched.dispatched();
    stats->scheduled = sched.scheduled();
  }
  return accountant.finish();
}

}  // namespace cyclops::link

#include "link/event_eval.hpp"

#include <algorithm>
#include <cstddef>

#include "event/scheduler.hpp"
#include "obs/config.hpp"

namespace cyclops::link {
namespace {

/// Hoisted eval-plane metric handles (one registry lookup per trace, one
/// relaxed atomic op per recording).  Null members when no registry was
/// passed; the whole struct is dead weight in CYCLOPS_OBS=OFF builds.
struct EvalMetrics {
  obs::Counter* intervals = nullptr;
  obs::Counter* bisect_iters = nullptr;
  obs::Counter* on_runs = nullptr;
  obs::Counter* off_runs = nullptr;
  obs::Histogram* off_run_ms = nullptr;

  explicit EvalMetrics(obs::Registry* registry) {
    if constexpr (obs::kEnabled) {
      if (registry != nullptr) {
        intervals = &registry->counter("eval_intervals_total");
        bisect_iters = &registry->counter("eval_bisect_iters_total");
        on_runs = &registry->counter("eval_on_runs_total");
        off_runs = &registry->counter("eval_off_runs_total");
        // Off runs last 1 slot .. ~10 s of slots; log buckets in ms.
        off_run_ms = &registry->histogram(
            "eval_link_off_run_ms", obs::HistogramSpec::log_scale(1.0, 1e4, 5));
      }
    }
  }
};

/// First s in [lo, hi) where `pred(s)` holds, or hi when none.  Requires
/// a monotone predicate (false... then true...), which IntervalModel
/// guarantees per region — see the off_at comment in slot_eval.hpp.
/// Probes the region's LAST slot first: ~99% of slots are connected
/// (fig16 reports 98.6% operational), so the overwhelmingly common
/// all-false region resolves in a single probe instead of log2(slots).
/// The endpoint answers are exact by the same monotonicity that justifies
/// the bisection, so the result is bit-identical to a plain binary
/// search.  `iters` (nullable) tallies probe count for the eval metrics.
template <typename Pred>
int first_true(int lo, int hi, Pred&& pred, std::uint64_t* iters = nullptr) {
  if (lo >= hi) return lo;
  if (iters != nullptr) ++*iters;
  if (!pred(hi - 1)) return hi;  // pred false across the whole region
  if (hi - lo == 1) return lo;
  if (iters != nullptr) ++*iters;
  if (pred(lo)) return lo;  // boundary at (or before) the region start
  // Boundary strictly inside (lo, hi-1]: bisect the open interior with
  // the known-true top pinned.
  lo += 1;
  int top = hi - 1;
  while (lo < top) {
    const int mid = lo + (top - lo) / 2;
    if (iters != nullptr) ++*iters;
    if (pred(mid)) {
      top = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// The fused per-trace evaluator: ONE process, ONE event per report
/// interval.  Each dispatch computes the interval's drift rates, bisects
/// for the first disconnected slot in each latency region, tallies the
/// resulting on/off runs straight into the §5.4 frame accumulator (no
/// run events — the runs are already known in slot order), and chains the
/// next report.  Runs on Scheduler::run_single for devirtualized dispatch.
class TraceEvalProcess final : public event::Process {
 public:
  TraceEvalProcess(const motion::Trace& trace, const SlotEvalConfig& config,
                   const EvalMetrics& metrics)
      : trace_(trace), config_(config), metrics_(metrics) {
    // The carry boundary depends only on the config — in_carry compares
    // (s+1)*slot_ms against tp_latency_ms, never the interval's rates —
    // so its bisection hoists out of the per-interval hot path entirely.
    // The scan runs the exact same predicate the per-interval bisection
    // would, so min(carry_limit_, slots) is bit-identical to
    // first_true(0, slots, !in_carry).
    detail::IntervalModel probe;
    probe.config = &config_;
    while (carry_limit_ < (1 << 20) && probe.in_carry(carry_limit_)) {
      ++carry_limit_;
    }
  }

  void set_self(event::ProcessId self) { self_ = self; }

  /// Intervals per report event (ISSUE-6 attack 4, timer churn): the
  /// report chain is strictly sequential — no other event type exists in
  /// this engine — so consecutive report timers coalesce into one event
  /// covering a run of intervals, the same batching precedent
  /// QuantizedFsoProcess sets for PHY slots.  Each interval's report time
  /// is still computed exactly (max-clamped against non-monotone sample
  /// times), and the interval model never reads the clock, so the tallies
  /// are bit-identical at any batch size.
  static constexpr std::size_t kIntervalsPerEvent = 32;

  void handle(event::Scheduler& sched, const event::Event& ev) override {
    std::size_t i = static_cast<std::size_t>(ev.i64);
    const std::size_t batch_end =
        std::min(trace_.samples.size(), i + kIntervalsPerEvent);
    util::SimTimeUs t_report = sched.now();
    for (; i < batch_end; ++i) {
      eval_interval(i);
      // Clamp for traces with non-increasing timestamps (the fixed-step
      // engine tolerates them by skipping the interval; we must not
      // schedule into the past).
      t_report = std::max(t_report, trace_.samples[i].time);
    }
    if (i < trace_.samples.size()) {
      event::Event next;
      next.time = t_report;
      next.type = kEvReportInterval;
      next.target = self_;
      next.i64 = static_cast<std::int64_t>(i);
      sched.schedule(next);
    }
  }

 private:
  void eval_interval(std::size_t i) {
    const auto& prev = trace_.samples[i - 1];
    const auto& cur = trace_.samples[i];
    if constexpr (obs::kEnabled) {
      if (metrics_.intervals != nullptr) metrics_.intervals->inc();
    }

    detail::IntervalModel model;
    model.gap_ms = util::us_to_ms(cur.time - prev.time);
    model.config = &config_;
    if (model.gap_ms > 0.0) {
      model.lat_rate =
          geom::translation_distance(prev.pose, cur.pose) / model.gap_ms;
      model.ang_rate =
          geom::rotation_distance(prev.pose, cur.pose) / model.gap_ms;

      const int slots =
          std::max(1, static_cast<int>(model.gap_ms / config_.slot_ms));
      // Carry-region boundary: slots [0, carry) still accumulate on the
      // previous interval's budget.  The boundary is config-only, so it
      // was bisected once at construction; both off_at region predicates
      // are monotone, so two bisections find the exact first off slot of
      // each region.
      std::uint64_t iters = 0;
      std::uint64_t* iter_tally =
          obs::kEnabled && metrics_.bisect_iters != nullptr ? &iters : nullptr;
      const int carry = std::min(carry_limit_, slots);
      const int off_a = first_true(
          0, carry, [&model](int s) { return model.off_at(s); }, iter_tally);
      const int off_b = first_true(
          carry, slots, [&model](int s) { return model.off_at(s); },
          iter_tally);
      if constexpr (obs::kEnabled) {
        if (metrics_.bisect_iters != nullptr) metrics_.bisect_iters->inc(iters);
      }

      // Fully-connected interval (the ~99% case per fig16): both regions
      // bisected to "no off slot", so the whole interval is one on-run —
      // exactly what the general segment-merge below would emit.
      if (off_a == carry && off_b == slots) {
        tally_run(false, slots);
        if constexpr (obs::kEnabled) {
          if (metrics_.on_runs != nullptr) metrics_.on_runs->inc();
        }
        return;
      }

      // Tally the interval as maximal same-state runs, in slot order:
      // [0,off_a) on, [off_a,carry) off, [carry,off_b) on, [off_b,slots)
      // off — with same-state neighbors (adjacent via an empty middle
      // segment, e.g. a fully-connected interval) merged into one run.
      // The runs feed the frame accumulator directly; the old design
      // round-tripped each one through a scheduled event to a second
      // process, doubling queue traffic for no information gain.
      const int bounds[5] = {0, off_a, carry, off_b, slots};
      int pend_begin = -1, pend_end = 0;
      bool pend_off = false;
      const auto emit = [&] {
        if (pend_begin < 0) return;
        tally_run(pend_off, pend_end - pend_begin);
        if constexpr (obs::kEnabled) {
          if (pend_off) {
            if (metrics_.off_runs != nullptr) metrics_.off_runs->inc();
            if (metrics_.off_run_ms != nullptr) {
              // run length in ms derives from integers x config constants,
              // so the recorded value is thread-count independent.
              metrics_.off_run_ms->record((pend_end - pend_begin) *
                                          config_.slot_ms);
            }
          } else if (metrics_.on_runs != nullptr) {
            metrics_.on_runs->inc();
          }
        }
      };
      for (int k = 1; k <= 4; ++k) {
        const bool off = (k % 2) == 0;  // segments alternate on/off.
        if (bounds[k] <= bounds[k - 1]) continue;
        if (pend_begin >= 0 && off == pend_off) {
          pend_end = bounds[k];  // coalesce with the previous segment
          continue;
        }
        emit();
        pend_begin = bounds[k - 1];
        pend_end = bounds[k];
        pend_off = off;
      }
      emit();
    }
  }

 public:
  const char* name() const noexcept override { return "trace_eval"; }

  /// Call once after the scheduler drains: flushes the final partial frame.
  SlotEvalResult finish() {
    if (slots_in_frame_ > 0) flush();
    return std::move(result_);
  }

 private:
  /// Frame accounting, identical arithmetic to the old FrameAccountant
  /// process (and the fixed-step loop): runs arrive in slot order, each
  /// split across the 30-slot frame boundaries it spans.
  void tally_run(bool off, int count) {
    result_.total_slots += count;
    while (count > 0) {
      const int take = std::min(count, detail::kFrameSlots - slots_in_frame_);
      slots_in_frame_ += take;
      if (off) off_in_frame_ += take;
      if (slots_in_frame_ == detail::kFrameSlots) flush();
      count -= take;
    }
  }

  void flush() {
    if (off_in_frame_ > 0) result_.off_per_dirty_frame.push_back(off_in_frame_);
    result_.off_slots += off_in_frame_;
    slots_in_frame_ = 0;
    off_in_frame_ = 0;
  }

  const motion::Trace& trace_;
  const SlotEvalConfig& config_;
  const EvalMetrics& metrics_;
  event::ProcessId self_ = event::kNoProcess;
  int carry_limit_ = 0;  ///< first slot past the carry region (config-only)
  SlotEvalResult result_;
  int slots_in_frame_ = 0;
  int off_in_frame_ = 0;
};

}  // namespace

SlotEvalResult evaluate_trace_events(const motion::Trace& trace,
                                     const SlotEvalConfig& config,
                                     EventEvalStats* stats,
                                     event::TraceHook* extra_hook,
                                     obs::Registry* registry) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  if (trace.samples.size() < 2) return {};

  event::Scheduler sched;
  if (extra_hook) sched.add_hook(extra_hook);

  EvalMetrics metrics(registry);
  TraceEvalProcess eval(trace, config, metrics);
  const event::ProcessId eval_id = sched.add_process(&eval);
  eval.set_self(eval_id);

  event::Event first;
  first.time = trace.samples.front().time;
  first.type = kEvReportInterval;
  first.target = eval_id;
  first.i64 = 1;
  sched.schedule(first);
  if (extra_hook) {
    sched.run();  // hooked path: generic loop so every dispatch is traced
  } else {
    sched.run_single(eval);  // devirtualized fast path
  }

  if (stats) {
    stats->dispatched = sched.dispatched();
    stats->scheduled = sched.scheduled();
  }
  SlotEvalResult result = eval.finish();
  if (registry != nullptr) {
    // Bulk per-trace tallies: one atomic add each, after the engine ran.
    registry->counter("eval_traces_total").inc();
    registry->counter("eval_slots_total")
        .inc(static_cast<std::uint64_t>(result.total_slots));
    registry->counter("eval_off_slots_total")
        .inc(static_cast<std::uint64_t>(result.off_slots));
    registry->counter("eval_events_dispatched_total").inc(sched.dispatched());
  }
  return result;
}

}  // namespace cyclops::link

#include "link/event_eval.hpp"

#include <algorithm>
#include <cstddef>

#include "event/scheduler.hpp"
#include "obs/config.hpp"

namespace cyclops::link {
namespace {

/// Hoisted eval-plane metric handles (one registry lookup per trace, one
/// relaxed atomic op per recording).  Null members when no registry was
/// passed; the whole struct is dead weight in CYCLOPS_OBS=OFF builds.
struct EvalMetrics {
  obs::Counter* intervals = nullptr;
  obs::Counter* bisect_iters = nullptr;
  obs::Counter* on_runs = nullptr;
  obs::Counter* off_runs = nullptr;
  obs::Histogram* off_run_ms = nullptr;

  explicit EvalMetrics(obs::Registry* registry) {
    if constexpr (obs::kEnabled) {
      if (registry != nullptr) {
        intervals = &registry->counter("eval_intervals_total");
        bisect_iters = &registry->counter("eval_bisect_iters_total");
        on_runs = &registry->counter("eval_on_runs_total");
        off_runs = &registry->counter("eval_off_runs_total");
        // Off runs last 1 slot .. ~10 s of slots; log buckets in ms.
        off_run_ms = &registry->histogram(
            "eval_link_off_run_ms", obs::HistogramSpec::log_scale(1.0, 1e4, 5));
      }
    }
  }
};

/// First s in [lo, hi) where `pred(s)` holds, or hi when none.  Requires
/// a monotone predicate (false... then true...), which IntervalModel
/// guarantees per region — see the off_at comment in slot_eval.hpp.
/// `iters` (nullable) tallies probe count for the eval metrics.
template <typename Pred>
int first_true(int lo, int hi, Pred&& pred, std::uint64_t* iters = nullptr) {
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (iters != nullptr) ++*iters;
    if (pred(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// Tallies link-state runs into the §5.4 result: total/off slot counters
/// plus the per-30-slot-frame off histogram, advancing frame-by-frame
/// instead of slot-by-slot.
class FrameAccountant final : public event::Process {
 public:
  void handle(event::Scheduler&, const event::Event& ev) override {
    const bool off = ev.type == kEvOffRun;
    int count = static_cast<int>(ev.i64);
    result_.total_slots += count;
    while (count > 0) {
      const int take =
          std::min(count, detail::kFrameSlots - slots_in_frame_);
      slots_in_frame_ += take;
      if (off) off_in_frame_ += take;
      if (slots_in_frame_ == detail::kFrameSlots) flush();
      count -= take;
    }
  }

  const char* name() const noexcept override { return "frame_accountant"; }

  /// Call once after the scheduler drains: flushes the final partial frame.
  SlotEvalResult finish() {
    if (slots_in_frame_ > 0) flush();
    return std::move(result_);
  }

 private:
  void flush() {
    if (off_in_frame_ > 0) result_.off_per_dirty_frame.push_back(off_in_frame_);
    result_.off_slots += off_in_frame_;
    slots_in_frame_ = 0;
    off_in_frame_ = 0;
  }

  SlotEvalResult result_;
  int slots_in_frame_ = 0;
  int off_in_frame_ = 0;
};

/// The TP/drift process: one kEvReportInterval event per trace sample.
/// For the interval it computes the drift rates, bisects for the first
/// disconnected slot in each latency region, and schedules the resulting
/// on/off runs (at their exact start times) to the frame accountant, then
/// chains the next report event.
class TraceReportProcess final : public event::Process {
 public:
  TraceReportProcess(const motion::Trace& trace, const SlotEvalConfig& config,
                     event::ProcessId accountant, const EvalMetrics& metrics)
      : trace_(trace), config_(config), accountant_(accountant),
        metrics_(metrics) {}

  void set_self(event::ProcessId self) { self_ = self; }

  void handle(event::Scheduler& sched, const event::Event& ev) override {
    const std::size_t i = static_cast<std::size_t>(ev.i64);
    const auto& prev = trace_.samples[i - 1];
    const auto& cur = trace_.samples[i];
    if constexpr (obs::kEnabled) {
      if (metrics_.intervals != nullptr) metrics_.intervals->inc();
    }

    detail::IntervalModel model;
    model.gap_ms = util::us_to_ms(cur.time - prev.time);
    model.config = &config_;
    if (model.gap_ms > 0.0) {
      model.lat_rate =
          geom::translation_distance(prev.pose, cur.pose) / model.gap_ms;
      model.ang_rate =
          geom::rotation_distance(prev.pose, cur.pose) / model.gap_ms;

      const int slots =
          std::max(1, static_cast<int>(model.gap_ms / config_.slot_ms));
      // Carry-region boundary: slots [0, carry) still accumulate on the
      // previous interval's budget.  Both region predicates are monotone,
      // so two bisections find the exact first off slot of each region.
      std::uint64_t iters = 0;
      std::uint64_t* iter_tally =
          obs::kEnabled && metrics_.bisect_iters != nullptr ? &iters : nullptr;
      const int carry = first_true(
          0, slots, [&model](int s) { return !model.in_carry(s); },
          iter_tally);
      const int off_a = first_true(
          0, carry, [&model](int s) { return model.off_at(s); }, iter_tally);
      const int off_b = first_true(
          carry, slots, [&model](int s) { return model.off_at(s); },
          iter_tally);
      if constexpr (obs::kEnabled) {
        if (metrics_.bisect_iters != nullptr) metrics_.bisect_iters->inc(iters);
      }

      // Emit the interval as maximal same-state runs, in slot order:
      // [0,off_a) on, [off_a,carry) off, [carry,off_b) on, [off_b,slots)
      // off — with same-state neighbors (adjacent via an empty middle
      // segment, e.g. a fully-connected interval) merged into one event.
      const int bounds[5] = {0, off_a, carry, off_b, slots};
      int pend_begin = -1, pend_end = 0;
      bool pend_off = false;
      const auto emit = [&] {
        if (pend_begin < 0) return;
        event::Event run;
        run.time =
            prev.time + util::us_from_ms(pend_begin * config_.slot_ms);
        run.type = pend_off ? kEvOffRun : kEvOnRun;
        run.target = accountant_;
        run.i64 = pend_end - pend_begin;
        run.f64 = pend_off ? model.lat_rate : 0.0;
        sched.schedule(run);
        if constexpr (obs::kEnabled) {
          if (pend_off) {
            if (metrics_.off_runs != nullptr) metrics_.off_runs->inc();
            if (metrics_.off_run_ms != nullptr) {
              // run length in ms derives from integers x config constants,
              // so the recorded value is thread-count independent.
              metrics_.off_run_ms->record((pend_end - pend_begin) *
                                          config_.slot_ms);
            }
          } else if (metrics_.on_runs != nullptr) {
            metrics_.on_runs->inc();
          }
        }
      };
      for (int k = 1; k <= 4; ++k) {
        const bool off = (k % 2) == 0;  // segments alternate on/off.
        if (bounds[k] <= bounds[k - 1]) continue;
        if (pend_begin >= 0 && off == pend_off) {
          pend_end = bounds[k];  // coalesce with the previous segment
          continue;
        }
        emit();
        pend_begin = bounds[k - 1];
        pend_end = bounds[k];
        pend_off = off;
      }
      emit();
    }

    if (i + 1 < trace_.samples.size()) {
      event::Event next;
      // Clamp for traces with non-increasing timestamps (the fixed-step
      // engine tolerates them by skipping the interval; we must not
      // schedule into the past).
      next.time = std::max(sched.now(), trace_.samples[i].time);
      next.type = kEvReportInterval;
      next.target = self_;
      next.i64 = static_cast<std::int64_t>(i + 1);
      sched.schedule(next);
    }
  }

  const char* name() const noexcept override { return "trace_report"; }

 private:
  const motion::Trace& trace_;
  const SlotEvalConfig& config_;
  event::ProcessId accountant_;
  const EvalMetrics& metrics_;
  event::ProcessId self_ = event::kNoProcess;
};

}  // namespace

SlotEvalResult evaluate_trace_events(const motion::Trace& trace,
                                     const SlotEvalConfig& config,
                                     EventEvalStats* stats,
                                     event::TraceHook* extra_hook,
                                     obs::Registry* registry) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  if (trace.samples.size() < 2) return {};

  event::Scheduler sched;
  if (extra_hook) sched.add_hook(extra_hook);

  EvalMetrics metrics(registry);
  FrameAccountant accountant;
  const event::ProcessId acc_id = sched.add_process(&accountant);
  TraceReportProcess reporter(trace, config, acc_id, metrics);
  const event::ProcessId reporter_id = sched.add_process(&reporter);
  reporter.set_self(reporter_id);

  event::Event first;
  first.time = trace.samples.front().time;
  first.type = kEvReportInterval;
  first.target = reporter_id;
  first.i64 = 1;
  sched.schedule(first);
  sched.run();

  if (stats) {
    stats->dispatched = sched.dispatched();
    stats->scheduled = sched.scheduled();
  }
  SlotEvalResult result = accountant.finish();
  if (registry != nullptr) {
    // Bulk per-trace tallies: one atomic add each, after the engine ran.
    registry->counter("eval_traces_total").inc();
    registry->counter("eval_slots_total")
        .inc(static_cast<std::uint64_t>(result.total_slots));
    registry->counter("eval_off_slots_total")
        .inc(static_cast<std::uint64_t>(result.off_slots));
    registry->counter("eval_events_dispatched_total").inc(sched.dispatched());
  }
  return result;
}

}  // namespace cyclops::link

// The closed-loop link control plane on the discrete-event engine.
//
// run_link_session_events replaces run_link_simulation's fixed-step loop
// with processes: the VRH-T schedules its own (jittered) capture events
// at exact times, TpController commands apply at their exact DAQ+settle
// completion instants, and the SFP sampler rides periodic slot events.
// HandoverProcess gives multi-TX selection a real cancellable switch
// timer — including handovers cancelled by the old TX reacquiring.
//
// The fixed-step run_link_simulation is kept as the §5.3 oracle; the
// event session agrees with it closely (asserted in tests) but not
// bit-for-bit, because reports are no longer quantized to the physics
// step.
#pragma once

#include <cassert>
#include <span>

#include "core/tp_controller.hpp"
#include "event/scheduler.hpp"
#include "link/fso_link.hpp"
#include "link/handover.hpp"
#include "link/session_core.hpp"
#include "link/session_log.hpp"
#include "motion/profile.hpp"
#include "obs/registry.hpp"
#include "runtime/context.hpp"
#include "sim/prototype.hpp"

namespace cyclops::link {

// SessionEventType (kEvReportCapture & co.) now lives in
// link/session_core.hpp, shared by every engine built on the core.

struct EventSessionStats {
  std::uint64_t events = 0;     ///< Dispatched by the scheduler.
  std::uint64_t scheduled = 0;
};

/// Event-driven counterpart of run_link_simulation.  `log` (optional)
/// receives per-slot transitions plus exact-time kRealignment events;
/// `stats` (optional) receives the engine's event counts.
///
/// `registry` (optional) receives session-plane metrics:
/// session_{realignments,tp_failures,slots,events_dispatched}_total
/// counters, the session_realign_latency_us histogram (report capture to
/// command settle, §5.2's end-to-end realignment latency) and the
/// session_link_off_us histogram (contiguous link-down spans, §5.4's
/// distributional view).  All values are sim-time quantities, so they are
/// deterministic; no-op in CYCLOPS_OBS=OFF builds.
RunResult run_link_session_events(sim::Prototype& proto,
                                  core::TpController& controller,
                                  const motion::MotionProfile& profile,
                                  const SimOptions& options = {},
                                  SessionLog* log = nullptr,
                                  EventSessionStats* stats = nullptr,
                                  obs::Registry* registry = nullptr);

/// Context overload: the whole session runs on `ctx`.  Its registry
/// receives the session metrics, its SimClock is reset to 0 and becomes
/// the session timeline (the scheduler advances it in place, so
/// ctx.clock().now() reads the session's current time), and the §5.3
/// start-up alignment polish fans out over its pool.
RunResult run_link_session_events(sim::Prototype& proto,
                                  core::TpController& controller,
                                  const motion::MotionProfile& profile,
                                  const runtime::Context& ctx,
                                  const SimOptions& options = {},
                                  SessionLog* log = nullptr,
                                  EventSessionStats* stats = nullptr);

/// Event-driven handover control.  Decision rule identical to
/// HandoverManager::step (hysteresis + drop threshold, first-best wins
/// ties), but the switch completion is a cancellable Timer: with
/// HandoverConfig::cancel_on_reacquire set, a drop-triggered switch is
/// abandoned if the old TX recovers before the timer fires.  The serving
/// TX commits only when the timer dispatches, at its exact time.
class HandoverProcess final : public event::Process {
 public:
  /// Registers itself with `sched`; `log` (optional) receives kHandover /
  /// kReacquisition events at their exact timestamps.  `registry`
  /// (optional) receives handover_{started,switches,cancelled}_total
  /// counters plus handover_{switch,reacq}_us histograms (time from the
  /// switch trigger to the commit / to the old TX reacquiring).
  HandoverProcess(std::size_t num_tx, HandoverConfig config,
                  event::Scheduler& sched, SessionLog* log = nullptr,
                  obs::Registry* registry = nullptr);

  /// Context overload: handover metrics land in `ctx.registry()`.
  HandoverProcess(std::size_t num_tx, HandoverConfig config,
                  event::Scheduler& sched, const runtime::Context& ctx,
                  SessionLog* log = nullptr);

  /// Feeds the per-TX achievable powers at sched.now(); returns the
  /// serving TX index, or -1 while a switch is in progress.
  int on_powers(std::span<const double> powers_dbm);

  void handle(event::Scheduler& sched, const event::Event& ev) override;
  const char* name() const noexcept override { return "handover"; }

  int active() const noexcept { return active_; }
  /// Seeds the serving TX before handover takes over — initial placement
  /// (an admission controller assigning the session to its first TX).
  /// Not legal while a switch is pending.
  void set_active(int tx) noexcept {
    assert(!switch_pending_);
    active_ = tx;
  }
  bool switching() const noexcept { return switch_pending_; }
  /// Switches that took (or will take) effect: started minus cancelled —
  /// matches HandoverManager::switches() when nothing is cancelled.
  int switches() const noexcept { return started_ - cancelled_; }
  int started() const noexcept { return started_; }
  int cancelled_switches() const noexcept { return cancelled_; }

 private:
  HandoverConfig config_;
  std::size_t num_tx_;
  event::Scheduler& sched_;
  SessionLog* log_;
  event::ProcessId self_ = event::kNoProcess;
  int active_ = 0;
  bool switch_pending_ = false;
  bool switch_drop_triggered_ = false;
  int pending_target_ = 0;
  event::Timer switch_timer_;
  util::SimTimeUs switch_started_at_ = 0;
  int started_ = 0;
  int cancelled_ = 0;

  // Hoisted metric handles (null without a registry / in OBS=OFF builds).
  obs::Counter* m_started_ = nullptr;
  obs::Counter* m_switches_ = nullptr;
  obs::Counter* m_cancelled_ = nullptr;
  obs::Histogram* m_switch_us_ = nullptr;
  obs::Histogram* m_reacq_us_ = nullptr;
};

}  // namespace cyclops::link

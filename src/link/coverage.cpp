#include "link/coverage.hpp"

#include <algorithm>
#include <cmath>

namespace cyclops::link {
namespace {

std::vector<geom::Vec3> head_samples(const RoomConfig& room) {
  std::vector<geom::Vec3> samples;
  for (double x = 0.0; x <= room.width + 1e-9; x += room.grid_pitch) {
    for (double z = 0.0; z <= room.depth + 1e-9; z += room.grid_pitch) {
      for (double y :
           {room.head_height_min,
            0.5 * (room.head_height_min + room.head_height_max),
            room.head_height_max}) {
        samples.push_back({x, y, z});
      }
    }
  }
  return samples;
}

std::vector<geom::Vec3> ceiling_candidates(const RoomConfig& room) {
  std::vector<geom::Vec3> candidates;
  for (double x = 0.0; x <= room.width + 1e-9; x += room.grid_pitch) {
    for (double z = 0.0; z <= room.depth + 1e-9; z += room.grid_pitch) {
      candidates.push_back({x, room.ceiling_height, z});
    }
  }
  return candidates;
}

int covering_count(const std::vector<geom::Vec3>& txs,
                   const geom::Vec3& head, const RoomConfig& room) {
  int n = 0;
  for (const auto& tx : txs) {
    if (tx_covers(tx, head, room)) ++n;
  }
  return n;
}

}  // namespace

bool tx_covers(const geom::Vec3& tx, const geom::Vec3& head,
               const RoomConfig& room) {
  const geom::Vec3 to_head = head - tx;
  const double range = to_head.norm();
  if (range > room.max_range || range < 1e-6) return false;
  // Boresight straight down.
  const double angle = geom::angle_between(to_head, {0.0, -1.0, 0.0});
  return angle <= room.tx_cone_half_angle;
}

double coverage_fraction(const std::vector<geom::Vec3>& tx_positions,
                         const RoomConfig& room) {
  const auto heads = head_samples(room);
  if (heads.empty()) return 0.0;
  int covered = 0;
  for (const auto& head : heads) {
    if (covering_count(tx_positions, head, room) >= room.min_coverage) {
      ++covered;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(heads.size());
}

CoveragePlan plan_coverage(const RoomConfig& room) {
  const auto heads = head_samples(room);
  const auto candidates = ceiling_candidates(room);

  CoveragePlan plan;
  plan.head_samples = static_cast<int>(heads.size());

  // need[i] = how many more covering TXs head i requires.
  std::vector<int> need(heads.size(), room.min_coverage);
  auto remaining = [&] {
    return std::count_if(need.begin(), need.end(),
                         [](int n) { return n > 0; });
  };

  while (remaining() > 0) {
    // Pick the candidate that satisfies the most outstanding demand.
    std::size_t best = candidates.size();
    long best_gain = 0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      long gain = 0;
      for (std::size_t h = 0; h < heads.size(); ++h) {
        if (need[h] > 0 && tx_covers(candidates[c], heads[h], room)) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    if (best == candidates.size()) break;  // nothing helps (unreachable spots)
    plan.tx_positions.push_back(candidates[best]);
    for (std::size_t h = 0; h < heads.size(); ++h) {
      if (need[h] > 0 && tx_covers(candidates[best], heads[h], room)) {
        --need[h];
      }
    }
  }

  plan.covered_fraction = coverage_fraction(plan.tx_positions, room);
  return plan;
}

}  // namespace cyclops::link

#include "link/session_log.hpp"

#include <algorithm>

#include "util/csv.hpp"

namespace cyclops::link {

const char* to_string(SessionEventKind kind) noexcept {
  switch (kind) {
    case SessionEventKind::kLinkUp:
      return "link_up";
    case SessionEventKind::kLinkDown:
      return "link_down";
    case SessionEventKind::kRealignment:
      return "realignment";
    case SessionEventKind::kTpFailure:
      return "tp_failure";
    case SessionEventKind::kHandover:
      return "handover";
    case SessionEventKind::kReacquisition:
      return "reacquisition";
  }
  return "unknown";
}

void SessionLog::on_event(util::SimTimeUs now, SessionEventKind kind,
                          double power_dbm) {
  events_.push_back({now, kind, power_dbm});
  last_time_ = std::max(last_time_, now);
}

void SessionLog::on_slot(util::SimTimeUs now, bool up, double power_dbm) {
  if (!have_state_) {
    have_state_ = true;
    last_up_ = up;
    events_.push_back({now,
                       up ? SessionEventKind::kLinkUp
                          : SessionEventKind::kLinkDown,
                       power_dbm});
  } else if (up != last_up_) {
    last_up_ = up;
    events_.push_back({now,
                       up ? SessionEventKind::kLinkUp
                          : SessionEventKind::kLinkDown,
                       power_dbm});
  }
  last_time_ = now;
}

int SessionLog::count(SessionEventKind kind) const {
  return static_cast<int>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const SessionEvent& e) { return e.kind == kind; }));
}

double SessionLog::longest_outage_s() const {
  double longest = 0.0;
  util::SimTimeUs down_since = -1;
  for (const auto& event : events_) {
    if (event.kind == SessionEventKind::kLinkDown) {
      down_since = event.time;
    } else if (event.kind == SessionEventKind::kLinkUp && down_since >= 0) {
      longest = std::max(longest, util::us_to_s(event.time - down_since));
      down_since = -1;
    }
  }
  if (down_since >= 0) {
    longest = std::max(longest, util::us_to_s(last_time_ - down_since));
  }
  return longest;
}

void SessionLog::save(const std::filesystem::path& stem) const {
  std::vector<std::vector<double>> window_rows;
  window_rows.reserve(windows_.size());
  for (const auto& w : windows_) {
    window_rows.push_back({w.t_s, w.throughput_gbps, w.avg_power_dbm,
                           w.min_power_all_dbm, w.power_ok_fraction,
                           w.linear_speed_mps, w.angular_speed_rps,
                           w.up_fraction});
  }
  util::write_csv(
      std::filesystem::path(stem.string() + "_windows.csv"),
      {"t_s", "throughput_gbps", "avg_power_dbm", "min_power_dbm",
       "power_ok_fraction", "linear_mps", "angular_rps", "up_fraction"},
      window_rows);

  std::vector<std::vector<double>> event_rows;
  event_rows.reserve(events_.size());
  for (const auto& e : events_) {
    event_rows.push_back({util::us_to_ms(e.time),
                          static_cast<double>(static_cast<int>(e.kind)),
                          e.power_dbm});
  }
  util::write_csv(std::filesystem::path(stem.string() + "_events.csv"),
                  {"t_ms", "kind", "power_dbm"}, event_rows);
}

}  // namespace cyclops::link

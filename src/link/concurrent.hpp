// Concurrent-session driver: N independent headset sessions in one
// process, each on its own isolated runtime::Context.
//
// This is the payoff of the Context refactor (DESIGN.md §11): because
// every plane takes its pool/registry/RNG/clock from the context instead
// of process-wide singletons, sessions that each get an isolated context
// share nothing — so running them fanned out over a pool produces outputs
// and exported metrics byte-identical to running each one alone, at any
// thread count (asserted in tests/concurrent_session_test.cpp).
//
// The driver deliberately does not know what a "session" computes: the
// caller supplies a context factory (typically Context::isolated with a
// per-session seed) and a session body that runs on that context and
// fills the session's log.  The driver captures each context's metrics
// export before the context dies, so per-session telemetry survives into
// the output (and can be rolled up fleet-wide with Registry::merge_from).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "link/fso_link.hpp"
#include "link/session_log.hpp"
#include "runtime/context.hpp"
#include "util/thread_pool.hpp"

namespace cyclops::link {

/// Everything one session leaves behind: its run result, its session log,
/// and its context's full metrics export (obs::to_jsonl; empty in
/// CYCLOPS_OBS=OFF builds).
struct SessionOutput {
  RunResult run;
  SessionLog log;
  std::string metrics_jsonl;
};

/// Builds session i's context.  Return Context::isolated(...) (seeded per
/// session) for full isolation; the factory is called from worker threads,
/// so it must be safe to invoke concurrently.
using ContextFactory = std::function<runtime::Context(std::size_t)>;

/// Runs session i on `ctx`, appending to `log`.  Everything the body does
/// should draw from `ctx` (rng(key), registry, clock, pool) — that is
/// what makes the parallel run reproduce the serial one.
using SessionBody =
    std::function<RunResult(std::size_t session, runtime::Context& ctx,
                            SessionLog& log)>;

/// Runs `n` sessions fanned out over `pool`, one isolated context each.
/// Each worker writes only its own output slot; outputs are returned in
/// session order.  Bit-identical to calling the body serially with the
/// same factory, at any `pool` thread count.
std::vector<SessionOutput> run_concurrent_sessions(
    std::size_t n, const ContextFactory& ctx_factory,
    const SessionBody& body,
    util::ThreadPool& pool = util::ThreadPool::global());

}  // namespace cyclops::link

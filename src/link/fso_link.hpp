// Closed-loop FSO link simulation: rig motion + VRH-T reports + TP
// realignment + optics + SFP link-state machine, stepped at sub-ms
// resolution.  This is the engine behind Figs 13-15.
#pragma once

#include <functional>
#include <vector>

#include "core/tp_controller.hpp"
#include "motion/profile.hpp"
#include "sim/prototype.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::link {

struct SimOptions {
  util::SimTimeUs step = 500;        ///< Physics step (0.5 ms).
  util::SimTimeUs window = 50000;    ///< Throughput window (50 ms, §5.3).
  /// Start from a perfectly aligned link (the §5.3 test protocol).
  bool align_at_start = true;
  /// Optional per-step observer: (time, traffic flows?, received power).
  /// Lets higher layers (e.g. the VR frame streamer) ride the simulation.
  std::function<void(util::SimTimeUs, bool, double)> on_slot;
};

/// One measurement window (the iperf/50 ms rows of Figs 13-15).
struct WindowSample {
  double t_s = 0.0;
  double throughput_gbps = 0.0;
  double avg_power_dbm = 0.0;   ///< Mean over up-slots; -inf if none.
  double min_power_dbm = 0.0;   ///< Min over up-slots; -inf if none.
  /// Min over *all* slots in the window — measures alignment capability
  /// independent of the SFP re-acquisition state machine.
  double min_power_all_dbm = 0.0;
  /// Fraction of the window's slots whose raw power meets the RX
  /// sensitivity (also re-acquisition-independent).
  double power_ok_fraction = 0.0;
  double linear_speed_mps = 0.0;
  double angular_speed_rps = 0.0;
  double up_fraction = 0.0;
};

struct RunResult {
  std::vector<WindowSample> windows;
  double total_up_fraction = 0.0;
  int realignments = 0;
  int tp_failures = 0;
  double avg_pointing_iterations = 0.0;
};

/// SFP/NIC link-state machine: the link is usable while power >= RX
/// sensitivity; after any drop it needs `link_up_delay` of continuous
/// light before traffic flows again (§5.3: "takes a few seconds to
/// regain the link").
class LinkStateMachine {
 public:
  LinkStateMachine(double sensitivity_dbm, util::SimTimeUs link_up_delay)
      : sensitivity_dbm_(sensitivity_dbm), link_up_delay_(link_up_delay) {}

  /// Feeds one power observation; returns whether traffic flows now.
  bool step(util::SimTimeUs now, double power_dbm);

  bool up() const noexcept { return up_; }
  void force_up() noexcept { up_ = true; }

 private:
  double sensitivity_dbm_;
  util::SimTimeUs link_up_delay_;
  bool up_ = false;
  bool light_ = false;
  util::SimTimeUs light_since_ = 0;
};

/// Runs the closed loop for the duration of `profile`.
RunResult run_link_simulation(sim::Prototype& proto,
                              core::TpController& controller,
                              const motion::MotionProfile& profile,
                              const SimOptions& options = {});

}  // namespace cyclops::link

// Closed-loop FSO link simulation: rig motion + VRH-T reports + TP
// realignment + optics + SFP link-state machine, sampled at sub-ms
// resolution.  This is the engine behind Figs 13-15.
//
// Two engines produce the same WindowSample sequence:
//   * kEvent (default) — the unified session core on event::Scheduler
//     (link/session_core): slots between report boundaries are coalesced
//     into one dispatch, the per-slot arithmetic is the oracle's verbatim.
//   * kFixedStep — the original 0.5 ms loop, retained as the equivalence
//     oracle.  Per-window output is exactly equal (enforced in
//     tests/session_core_test and bench/fig13).
#pragma once

#include <functional>
#include <vector>

#include "core/tp_controller.hpp"
#include "motion/profile.hpp"
#include "phy/link_state.hpp"
#include "sim/prototype.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::link {

/// Which engine runs the closed loop (cf. EvalEngine in slot_eval).
enum class SessionEngine {
  kEvent,      ///< Unified event-driven session core (default).
  kFixedStep,  ///< Legacy fixed-step loop — the equivalence oracle.
};

struct SimOptions {
  util::SimTimeUs step = 500;        ///< Physics step (0.5 ms).
  util::SimTimeUs window = 50000;    ///< Throughput window (50 ms, §5.3).
  /// Start from a perfectly aligned link (the §5.3 test protocol).
  bool align_at_start = true;
  /// Optional per-step observer: (time, traffic flows?, received power).
  /// Lets higher layers (e.g. the VR frame streamer) ride the simulation.
  std::function<void(util::SimTimeUs, bool, double)> on_slot;
  SessionEngine engine = SessionEngine::kEvent;
};

/// One measurement window (the iperf/50 ms rows of Figs 13-15).
struct WindowSample {
  double t_s = 0.0;
  double throughput_gbps = 0.0;
  double avg_power_dbm = 0.0;   ///< Mean over up-slots; -inf if none.
  double min_power_dbm = 0.0;   ///< Min over up-slots; -inf if none.
  /// Min over *all* slots in the window — measures alignment capability
  /// independent of the SFP re-acquisition state machine.
  double min_power_all_dbm = 0.0;
  /// Fraction of the window's slots whose raw power meets the RX
  /// sensitivity (also re-acquisition-independent).
  double power_ok_fraction = 0.0;
  double linear_speed_mps = 0.0;
  double angular_speed_rps = 0.0;
  double up_fraction = 0.0;
};

struct RunResult {
  std::vector<WindowSample> windows;
  double total_up_fraction = 0.0;
  /// Mean delivered rate over all slots (Gbps).  For the fixed-rate FSO
  /// channel this is total_up_fraction * goodput; for rate-adaptive
  /// channels (phy::MmWaveChannel, phy::WdmChannel via
  /// run_channel_session) it is the MCS/lane-ladder average.
  double avg_rate_gbps = 0.0;
  int realignments = 0;
  int tp_failures = 0;
  double avg_pointing_iterations = 0.0;
};

/// The SFP/NIC link-state machine now lives in phy (phy/link_state.hpp)
/// so every channel adapter can reuse it; the old name stays usable.
using LinkStateMachine = phy::LinkStateMachine;

/// Runs the closed loop for the duration of `profile` on
/// `options.engine`.
RunResult run_link_simulation(sim::Prototype& proto,
                              core::TpController& controller,
                              const motion::MotionProfile& profile,
                              const SimOptions& options = {});

/// The fixed-step oracle, callable directly (options.engine is ignored).
RunResult run_link_simulation_fixed_step(sim::Prototype& proto,
                                         core::TpController& controller,
                                         const motion::MotionProfile& profile,
                                         const SimOptions& options = {});

}  // namespace cyclops::link

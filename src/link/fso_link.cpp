#include "link/fso_link.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "core/exhaustive_aligner.hpp"
#include "link/session_core.hpp"

namespace cyclops::link {

RunResult run_link_simulation(sim::Prototype& proto,
                              core::TpController& controller,
                              const motion::MotionProfile& profile,
                              const SimOptions& options) {
  if (options.engine == SessionEngine::kFixedStep) {
    return run_link_simulation_fixed_step(proto, controller, profile, options);
  }
  return detail::run_link_simulation_event(proto, controller, profile,
                                           options);
}

RunResult run_link_simulation_fixed_step(sim::Prototype& proto,
                                         core::TpController& controller,
                                         const motion::MotionProfile& profile,
                                         const SimOptions& options) {
  RunResult result;
  const optics::SfpSpec& sfp = proto.scene.config().sfp;
  LinkStateMachine state(sfp.rx_sensitivity_dbm,
                         util::us_from_s(sfp.link_up_delay_s));

  // Applied GM voltages (what the hardware currently holds).  Commands
  // pipeline through the DAQ: each applies at its own time even when the
  // report period is shorter than the conversion latency.
  sim::Voltages applied{};
  std::deque<core::PendingCommand> pending;

  proto.scene.set_rig_pose(profile.pose_at(0));
  if (options.align_at_start) {
    // §5.3 protocol: each run starts from an aligned link.
    const core::PointingResult initial = controller.solver().solve(
        proto.tracker.ideal_report(proto.scene.rig_pose()), applied);
    applied = initial.voltages;
    core::ExhaustiveAligner polish;
    applied = polish.align(proto.scene, applied).voltages;
    state.force_up();
  }

  const auto duration = util::us_from_s(profile.duration_s());
  proto.tracker.reset_schedule();  // simulation time restarts at 0
  util::SimTimeUs next_report = proto.tracker.next_capture_time(0);

  // Window accumulators.
  util::SimTimeUs window_start = 0;
  double window_up_time = 0.0;
  double window_power_sum = 0.0;
  double window_min_power = std::numeric_limits<double>::infinity();
  double window_min_power_all = std::numeric_limits<double>::infinity();
  int window_power_ok_slots = 0;
  int window_up_slots = 0;
  int window_slots = 0;

  double total_up = 0.0;
  int total_slots = 0;
  double total_rate = 0.0;

  for (util::SimTimeUs now = 0; now < duration; now += options.step) {
    const geom::Pose pose = profile.pose_at(now);
    proto.scene.set_rig_pose(pose);

    // Tracker report?
    if (now >= next_report) {
      const util::SimTimeUs lag =
          util::us_from_ms(proto.tracker.config().position_lag_ms);
      const geom::Pose lagged =
          profile.pose_at(now > lag ? now - lag : 0);
      const tracking::PoseReport report =
          proto.tracker.report(now, pose, lagged);
      if (!report.lost) {
        if (auto cmd = controller.on_report(report)) {
          pending.push_back(*cmd);
          ++result.realignments;
        }
      }
      next_report = proto.tracker.next_capture_time(now);
    }
    // Apply pending realignments once their latency has elapsed.
    while (!pending.empty() && now >= pending.front().apply_time) {
      applied = pending.front().voltages;
      pending.pop_front();
    }

    const double power = proto.scene.received_power_dbm(applied);
    const bool up = state.step(now, power);
    if (options.on_slot) options.on_slot(now, up, power);

    ++window_slots;
    ++total_slots;
    window_min_power_all = std::min(window_min_power_all, power);
    if (power >= sfp.rx_sensitivity_dbm) ++window_power_ok_slots;
    if (up) {
      window_up_time += util::us_to_s(options.step);
      ++window_up_slots;
      total_up += 1.0;
      window_power_sum += power;
      window_min_power = std::min(window_min_power, power);
    }
    total_rate += up ? sfp.goodput_gbps : 0.0;

    if ((now + options.step) % options.window < options.step ||
        now + options.step >= duration) {
      WindowSample sample;
      sample.t_s = util::us_to_s(window_start);
      const motion::Speeds speeds =
          motion::measure_speeds(profile, window_start + options.window / 2);
      sample.linear_speed_mps = speeds.linear_mps;
      sample.angular_speed_rps = speeds.angular_rps;
      sample.up_fraction =
          window_slots > 0
              ? static_cast<double>(window_up_slots) / window_slots
              : 0.0;
      sample.throughput_gbps = sample.up_fraction * sfp.goodput_gbps;
      sample.avg_power_dbm =
          window_up_slots > 0
              ? window_power_sum / window_up_slots
              : -std::numeric_limits<double>::infinity();
      sample.min_power_dbm =
          window_up_slots > 0
              ? window_min_power
              : -std::numeric_limits<double>::infinity();
      sample.min_power_all_dbm =
          window_slots > 0
              ? window_min_power_all
              : -std::numeric_limits<double>::infinity();
      sample.power_ok_fraction =
          window_slots > 0
              ? static_cast<double>(window_power_ok_slots) / window_slots
              : 0.0;
      result.windows.push_back(sample);

      window_start = now + options.step;
      window_up_time = 0.0;
      window_power_sum = 0.0;
      window_min_power = std::numeric_limits<double>::infinity();
      window_min_power_all = std::numeric_limits<double>::infinity();
      window_power_ok_slots = 0;
      window_up_slots = 0;
      window_slots = 0;
    }
  }

  result.total_up_fraction =
      total_slots > 0 ? total_up / total_slots : 0.0;
  result.avg_rate_gbps = total_slots > 0 ? total_rate / total_slots : 0.0;
  result.tp_failures = controller.failures();
  result.avg_pointing_iterations = controller.avg_pointing_iterations();
  return result;
}

}  // namespace cyclops::link

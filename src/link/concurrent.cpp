#include "link/concurrent.hpp"

#include <utility>

#include "obs/config.hpp"
#include "obs/export.hpp"

namespace cyclops::link {

std::vector<SessionOutput> run_concurrent_sessions(
    std::size_t n, const ContextFactory& ctx_factory,
    const SessionBody& body, util::ThreadPool& pool) {
  std::vector<SessionOutput> outputs(n);
  // One context per session, created and destroyed on the worker: nothing
  // is shared across indices, each worker writes only outputs[i].
  util::parallel_for(
      n,
      [&](std::size_t i) {
        runtime::Context ctx = ctx_factory(i);
        SessionOutput& out = outputs[i];
        out.run = body(i, ctx, out.log);
        // Export before the context (and its registry) dies; the string
        // is byte-stable, which is what the isolation tests compare.
        if constexpr (obs::kEnabled) {
          out.metrics_jsonl = obs::to_jsonl(ctx.registry());
        }
      },
      pool);
  return outputs;
}

}  // namespace cyclops::link

#include "link/handover.hpp"

#include <algorithm>
#include <cassert>

namespace cyclops::link {

int HandoverManager::step(util::SimTimeUs now,
                          std::span<const double> powers_dbm) {
  assert(powers_dbm.size() == num_tx_);
  if (num_tx_ == 0) return -1;

  const auto best_it =
      std::max_element(powers_dbm.begin(), powers_dbm.end());
  const int best = static_cast<int>(best_it - powers_dbm.begin());
  const double active_power = powers_dbm[static_cast<std::size_t>(active_)];

  const bool active_lost = active_power < config_.drop_threshold_dbm;
  const bool better = *best_it > active_power + config_.hysteresis_db;

  if (best != active_ && (active_lost || better) && !switching(now)) {
    active_ = best;
    ++switches_;
    switch_done_ = now + util::us_from_s(config_.switch_delay_s);
  }
  return switching(now) ? -1 : active_;
}

}  // namespace cyclops::link

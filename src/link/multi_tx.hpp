// Multi-TX rig: several ceiling transmitters serving one headset, with
// per-TX calibrated TP chains and handover — the §3 occlusion/coverage
// architecture as a first-class API (examples/handover_demo shows the
// manual version).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/calibration.hpp"
#include "core/tp_controller.hpp"
#include "link/handover.hpp"
#include "link/session_log.hpp"
#include "motion/profile.hpp"
#include "obs/registry.hpp"
#include "runtime/context.hpp"

namespace cyclops::link {

/// One calibrated TX chain.
struct TxChain {
  sim::Prototype proto;
  core::CalibrationResult calibration;
  core::PointingSolver solver;
  sim::Voltages voltages{};

  TxChain(sim::Prototype p, core::CalibrationResult c,
          const runtime::Context& ctx = runtime::Context::default_ctx())
      : proto(std::move(p)),
        calibration(std::move(c)),
        solver(calibration.make_pointing_solver({}, ctx)) {}

  /// Chain with a truth "calibration" — ground-truth galvo models and
  /// mappings lifted straight from the prototype, no sample collection or
  /// LM fits.  The LP-scale path (session catalog, fleet benches): a chain
  /// in microseconds instead of the full calibrate_prototype pipeline.
  static TxChain from_truth(sim::Prototype p, const runtime::Context& ctx =
                                                  runtime::Context::default_ctx());
};

struct MultiTxConfig {
  HandoverConfig handover;
  util::SimTimeUs step = 1000;
  double report_period_ms = 12.5;
  /// Per-chain TP configuration (DAQ latency, optional pose prediction).
  core::TpConfig tp;
  /// Per-slot decision tap (mirrors HeteroConfig::on_slot): called after
  /// the handover decision each sampling slot with (time, serving TX index
  /// or -1 while a switch is in flight, serving-TX-usable, serving power
  /// dBm — the best power seen this slot when mid-switch).  The structured
  /// trail behind "which TX carried slot t and why did we leave it".
  std::function<void(util::SimTimeUs, int, bool, double)> on_slot;
};

struct MultiTxResult {
  double served_fraction = 0.0;        ///< Slots with a usable serving TX.
  double best_single_tx_fraction = 0.0;  ///< Best TX alone (baseline).
  int switches = 0;
  /// Switches started but abandoned because the old TX reacquired before
  /// the switch delay elapsed (HandoverConfig::cancel_on_reacquire).
  int cancelled_switches = 0;
  std::uint64_t events = 0;  ///< Events dispatched by the session engine.
  std::vector<double> per_tx_usable_fraction;
};

/// Builds a TX chain: prototype at `tx_position` + full calibration.
/// Calibration (sample collection, LM fits, alignment fan-out) runs on
/// `ctx` — its pool, and its registry for the opt-plane metrics.
TxChain make_tx_chain(std::uint64_t seed, const geom::Vec3& tx_position,
                      const sim::PrototypeConfig& base_config,
                      const runtime::Context& ctx =
                          runtime::Context::default_ctx());

/// Runs a multi-TX session over `profile` on the discrete-event engine:
/// TP commands apply at their exact DAQ+settle instants (a newer command
/// cancels an un-applied older one) and handovers complete on cancellable
/// switch timers.  `occlusion(t, tx_index)` says whether the given TX's
/// path is blocked at time t (the scene occluders are managed internally
/// from it).  `log` (optional) receives kHandover / kReacquisition events
/// at their exact timestamps.
///
/// `registry` (optional) receives multi_tx_{slots,served,events_dispatched}
/// _total counters plus the handover metrics documented on HandoverProcess
/// (switches, cancellations, reacquisition time).  No-op in
/// CYCLOPS_OBS=OFF builds.
MultiTxResult run_multi_tx_session(
    std::vector<TxChain>& chains, const motion::MotionProfile& profile,
    const MultiTxConfig& config,
    const std::function<bool(util::SimTimeUs, std::size_t)>& occlusion,
    SessionLog* log = nullptr, obs::Registry* registry = nullptr);

/// Context overload: the session metrics land in ctx.registry() and the
/// scheduler rides ctx.clock() (reset to 0 at session start, advanced in
/// place — ctx.clock().now() reads the session's current time).
MultiTxResult run_multi_tx_session(
    std::vector<TxChain>& chains, const motion::MotionProfile& profile,
    const MultiTxConfig& config,
    const std::function<bool(util::SimTimeUs, std::size_t)>& occlusion,
    const runtime::Context& ctx, SessionLog* log = nullptr);

}  // namespace cyclops::link

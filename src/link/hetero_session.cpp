#include "link/hetero_session.hpp"

#include <array>
#include <deque>
#include <optional>

#include "core/exhaustive_aligner.hpp"
#include "link/event_session.hpp"
#include "obs/config.hpp"
#include "phy/fso_channel.hpp"
#include "session/lifecycle.hpp"

namespace cyclops::link {
namespace {

/// One slot across both channels: FSO steering plane (quantized report
/// cadence, DAQ-latency command pipeline), both link-state machines, then
/// the margin-space handover decision and service/rate accounting.
class HeteroSlotProcess final : public event::Process {
 public:
  HeteroSlotProcess(sim::Prototype& proto, core::TpController& controller,
                    phy::FsoChannel& fso, phy::Channel& fallback,
                    const motion::MotionProfile& profile,
                    const HeteroConfig& config, HandoverProcess& handover,
                    HeteroResult& result, util::SimTimeUs duration)
      : proto_(proto),
        controller_(controller),
        fso_(fso),
        fallback_(fallback),
        profile_(profile),
        config_(config),
        handover_(handover),
        result_(result),
        duration_(duration),
        next_report_(proto.tracker.next_capture_time(0)) {}

  void set_self(event::ProcessId id) noexcept { self_ = id; }

  void handle(event::Scheduler& sched, const event::Event& ev) override {
    const util::SimTimeUs now = ev.time;
    const geom::Pose pose = profile_.pose_at(now);

    sim::Scene& scene = fso_.scene();
    scene.clear_occluders();
    if (config_.fso_occlusion && config_.fso_occlusion(now)) {
      const geom::Vec3 mid =
          (scene.tx().mount().translation() + pose.translation()) * 0.5;
      scene.add_occluder({mid, 0.25});
    }

    // FSO steering plane (quantized to the slot grid, like
    // run_link_simulation's kEvent engine).
    if (now >= next_report_) {
      const util::SimTimeUs lag =
          util::us_from_ms(proto_.tracker.config().position_lag_ms);
      const geom::Pose lagged = profile_.pose_at(now > lag ? now - lag : 0);
      const tracking::PoseReport report =
          proto_.tracker.report(now, pose, lagged);
      if (!report.lost) {
        if (auto cmd = controller_.on_report(report)) {
          pending_.push_back(*cmd);
          ++result_.realignments;
        }
      }
      next_report_ = proto_.tracker.next_capture_time(now);
    }
    while (!pending_.empty() && now >= pending_.front().apply_time) {
      fso_.set_voltages(pending_.front().voltages);
      if (log_) {
        log_->on_event(pending_.front().apply_time,
                       SessionEventKind::kRealignment);
      }
      pending_.pop_front();
    }

    // Both channels sample the same pose; the handover decision runs in
    // margin space so the metrics stay unit-consistent.
    const std::array<phy::Channel*, 2> channels = {&fso_, &fallback_};
    std::array<double, 2> metric{};
    std::array<bool, 2> up{};
    std::array<double, 2> margin{};
    for (std::size_t i = 0; i < channels.size(); ++i) {
      metric[i] = channels[i]->power_at(pose, now);
      up[i] = channels[i]->step(now, metric[i]);
      margin[i] = metric[i] - channels[i]->info().sensitivity;
      if (margin[i] >= 0.0) ++usable_[i];
    }

    const std::array<double, 2> decision = {
        margin[0], margin[1] - config_.fallback_penalty_db};
    const int serving = handover_.on_powers(decision);
    ++slots_;
    bool serving_up = false;
    double slot_rate = 0.0;
    if (serving >= 0) {
      const auto s = static_cast<std::size_t>(serving);
      if (serving != last_serving_) {
        // The switch delay just paid for re-pointing + re-acquisition on
        // the new channel (HandoverConfig::switch_delay_s), so its state
        // machine comes up with the commit — same semantics as multi-TX.
        channels[s]->force_up();
        up[s] = channels[s]->step(now, metric[s]);
        last_serving_ = serving;
      }
      ++serving_slots_[s];
      if (up[s]) {
        serving_up = true;
        slot_rate = channels[s]->rate_for(metric[s]);
        ++served_;
        rate_sum_ += slot_rate;
      }
    }
    if (config_.on_slot) config_.on_slot(now, serving, serving_up, slot_rate);

    const util::SimTimeUs next = now + config_.step;
    if (next < duration_) {
      event::Event slot;
      slot.time = next;
      slot.type = kEvSlotSample;
      slot.target = self_;
      sched.schedule(slot);
    }
  }

  void set_log(SessionLog* log) noexcept { log_ = log; }

  void finalize() {
    result_.served_fraction =
        slots_ > 0 ? static_cast<double>(served_) / slots_ : 0.0;
    result_.avg_rate_gbps = slots_ > 0 ? rate_sum_ / slots_ : 0.0;
    const std::array<const phy::Channel*, 2> channels = {&fso_, &fallback_};
    for (std::size_t i = 0; i < channels.size(); ++i) {
      HeteroChannelStats stats;
      stats.name = channels[i]->info().name;
      stats.usable_fraction =
          slots_ > 0 ? static_cast<double>(usable_[i]) / slots_ : 0.0;
      stats.serving_fraction =
          slots_ > 0 ? static_cast<double>(serving_slots_[i]) / slots_ : 0.0;
      result_.channels.push_back(stats);
    }
  }

  int slots() const noexcept { return slots_; }
  int served() const noexcept { return served_; }
  const char* name() const noexcept override { return "hetero-slot"; }

 private:
  sim::Prototype& proto_;
  core::TpController& controller_;
  phy::FsoChannel& fso_;
  phy::Channel& fallback_;
  const motion::MotionProfile& profile_;
  const HeteroConfig& config_;
  HandoverProcess& handover_;
  HeteroResult& result_;
  util::SimTimeUs duration_;
  util::SimTimeUs next_report_;
  SessionLog* log_ = nullptr;
  event::ProcessId self_ = event::kNoProcess;

  std::deque<core::PendingCommand> pending_;
  int last_serving_ = 0;
  std::array<int, 2> usable_{};
  std::array<int, 2> serving_slots_{};
  int slots_ = 0;
  int served_ = 0;
  double rate_sum_ = 0.0;
};

HeteroResult run_hetero_session_impl(sim::Prototype& proto,
                                     core::TpController& controller,
                                     phy::Channel& fallback,
                                     const motion::MotionProfile& profile,
                                     const HeteroConfig& config,
                                     SessionLog* log, obs::Registry* registry,
                                     const runtime::Context* ctx) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  HeteroResult result;
  phy::FsoChannel fso(proto.scene);
  const util::SimTimeUs duration = util::us_from_s(profile.duration_s());

  proto.scene.set_rig_pose(profile.pose_at(0));
  if (config.align_at_start) {
    const core::PointingResult initial = controller.solver().solve(
        proto.tracker.ideal_report(proto.scene.rig_pose()), fso.voltages());
    const core::ExhaustiveAligner polish =
        ctx != nullptr ? core::ExhaustiveAligner({}, *ctx)
                       : core::ExhaustiveAligner();
    fso.set_voltages(polish.align(proto.scene, initial.voltages).voltages);
    fso.force_up();
    fallback.force_up();
  }
  proto.tracker.reset_schedule();

  session::ScopedScheduler lease(session::bind_session_clock(ctx));
  event::Scheduler& sched = lease.get();
  // Registered first: an equal-time switch-done timer commits before the
  // slot that samples it (same tie discipline as run_multi_tx_session).
  HandoverProcess handover(2, config.handover, sched, log, registry);

  HeteroSlotProcess slot(proto, controller, fso, fallback, profile, config,
                         handover, result, duration);
  slot.set_log(log);
  const event::ProcessId slot_id = sched.add_process(&slot);
  slot.set_self(slot_id);
  if (duration > 0) {
    event::Event first;
    first.time = 0;
    first.type = kEvSlotSample;
    first.target = slot_id;
    sched.schedule(first);
  }
  sched.run();
  slot.finalize();

  result.switches = handover.switches();
  result.cancelled_switches = handover.cancelled_switches();
  result.events = sched.dispatched();
  if (registry != nullptr) {
    registry->counter("hetero_slots_total")
        .inc(static_cast<std::uint64_t>(slot.slots()));
    registry->counter("hetero_served_total")
        .inc(static_cast<std::uint64_t>(slot.served()));
    registry->counter("hetero_events_dispatched_total")
        .inc(sched.dispatched());
  }
  return result;
}

}  // namespace

HeteroResult run_hetero_session(sim::Prototype& proto,
                                core::TpController& controller,
                                phy::Channel& fallback,
                                const motion::MotionProfile& profile,
                                const HeteroConfig& config, SessionLog* log,
                                obs::Registry* registry) {
  return run_hetero_session_impl(proto, controller, fallback, profile, config,
                                 log, registry, nullptr);
}

HeteroResult run_hetero_session(sim::Prototype& proto,
                                core::TpController& controller,
                                phy::Channel& fallback,
                                const motion::MotionProfile& profile,
                                const runtime::Context& ctx,
                                const HeteroConfig& config, SessionLog* log) {
  return run_hetero_session_impl(proto, controller, fallback, profile, config,
                                 log, &ctx.registry(), &ctx);
}

}  // namespace cyclops::link

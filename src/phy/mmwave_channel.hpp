// phy::Channel adapter for the 60 GHz mmWave baseline (§1, §2.1): the
// 802.11ad MCS ladder, LOS blockage, and beam retraining become channel
// state behind the unified interface, so the same session core that runs
// the FSO link can run — and be compared against — the baseline.
//
// Metric: received SNR in dB.  power_at folds the blockage penalty in and
// accumulates head rotation from consecutive poses (the beam-training
// trigger), so call it once per slot in time order.  rate_for is the
// ideal-adaptation MCS ladder times MAC efficiency; step() reports the
// retraining outages.
#pragma once

#include <functional>

#include "baseline/mmwave.hpp"
#include "geom/vec3.hpp"
#include "phy/channel.hpp"

namespace cyclops::phy {

struct MmWaveChannelConfig {
  baseline::MmWaveConfig radio;
  /// Access-point position (the ceiling unit the phased array tracks).
  geom::Vec3 ap_position{0.0, 2.2, 0.0};
  /// Optional LOS obstruction (e.g. a passer-by); costs
  /// radio.blockage_loss_db while true.
  std::function<bool(util::SimTimeUs)> blockage;
};

class MmWaveChannel final : public Channel {
 public:
  /// Telemetry (retrain counter, MCS-dwell histograms, blockage spans —
  /// see baseline::MmWaveSession) lands in `registry` when given.
  explicit MmWaveChannel(MmWaveChannelConfig config,
                         obs::Registry* registry = nullptr);
  /// Context overload: metrics land in ctx.registry() (session isolation).
  MmWaveChannel(MmWaveChannelConfig config, const runtime::Context& ctx);

  const ChannelInfo& info() const noexcept override { return info_; }

  double power_at(const geom::Pose& rig_pose, util::SimTimeUs t) override;
  double rate_for(double snr_db) const override;
  bool step(util::SimTimeUs now, double snr_db) override;

  /// Flushes the open MCS-dwell / blockage spans into the registry.
  void finish(util::SimTimeUs now) { session_.finish(now); }

  int retrains() const noexcept { return session_.retrains(); }
  const baseline::MmWaveLink& link() const noexcept { return session_.link(); }

 private:
  MmWaveChannelConfig config_;
  baseline::MmWaveSession session_;
  ChannelInfo info_;
  bool have_pose_ = false;
  geom::Pose last_pose_;
  double cum_rotation_rad_ = 0.0;
  bool last_blocked_ = false;
};

}  // namespace cyclops::phy

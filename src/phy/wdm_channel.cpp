#include "phy/wdm_channel.hpp"

#include <algorithm>
#include <limits>

namespace cyclops::phy {

WdmChannel::WdmChannel(optics::WdmTransceiver transceiver,
                       optics::CollimatorChromatics collimator,
                       LossFn shared_loss_db, double link_up_delay_s)
    : transceiver_(std::move(transceiver)),
      collimator_(collimator),
      shared_loss_db_(std::move(shared_loss_db)),
      state_(0.0, util::us_from_s(link_up_delay_s)) {
  info_.name = transceiver_.name;
  info_.peak_rate_gbps = transceiver_.total_rate_gbps();
  info_.rate_adaptive = true;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < transceiver_.lanes.size(); ++i) {
    best = std::min(best, lane_threshold(i));
  }
  info_.sensitivity = best;
  // The aggregate link is "lit" once any lane is; the state machine's
  // threshold is the first lane's.
  state_ = LinkStateMachine(info_.sensitivity,
                            util::us_from_s(link_up_delay_s));
}

double WdmChannel::lane_threshold(std::size_t i) const {
  const optics::WdmLane& lane = transceiver_.lanes[i];
  return lane.rx_sensitivity_dbm +
         collimator_.penalty_db(lane.wavelength_nm) - lane.tx_power_dbm;
}

}  // namespace cyclops::phy

// SFP/NIC link-state machine (moved here from link/fso_link so every
// phy::Channel adapter can reuse it; link::LinkStateMachine remains as an
// alias).  The link is usable while the metric >= sensitivity; after any
// drop it needs `link_up_delay` of continuous light before traffic flows
// again (§5.3: "takes a few seconds to regain the link").
#pragma once

#include "util/sim_clock.hpp"

namespace cyclops::phy {

class LinkStateMachine {
 public:
  LinkStateMachine(double sensitivity_dbm, util::SimTimeUs link_up_delay)
      : sensitivity_dbm_(sensitivity_dbm), link_up_delay_(link_up_delay) {}

  /// Feeds one power observation; returns whether traffic flows now.
  bool step(util::SimTimeUs now, double power_dbm);

  bool up() const noexcept { return up_; }
  void force_up() noexcept { up_ = true; }

 private:
  double sensitivity_dbm_;
  util::SimTimeUs link_up_delay_;
  bool up_ = false;
  bool light_ = false;
  util::SimTimeUs light_since_ = 0;
};

}  // namespace cyclops::phy

#include "phy/link_state.hpp"

namespace cyclops::phy {

bool LinkStateMachine::step(util::SimTimeUs now, double power_dbm) {
  const bool light = power_dbm >= sensitivity_dbm_;
  if (!light) {
    up_ = false;
    light_ = false;
    return false;
  }
  if (!light_) {
    light_ = true;
    light_since_ = now;
  }
  if (!up_ && now - light_since_ >= link_up_delay_) up_ = true;
  return up_;
}

}  // namespace cyclops::phy

// The unified PHY-channel abstraction.
//
// Cyclops evaluates its FSO link against a 60 GHz mmWave baseline and a
// WDM future design (§2.1, §5.3, §8).  All three are, to the session
// layer, the same thing: a scalar link metric that depends on where the
// headset is, a rate that metric buys, and a link-state machine that
// decides whether traffic flows.  phy::Channel captures exactly that
// contract, so one event-driven session core (link/session_core) can run
// any of them — including side by side in the same scheduler for
// heterogeneous FSO→mmWave fallback (link/hetero_session).
//
// The metric ("power") is in channel-defined units:
//   * FsoChannel    — received optical power, dBm (SFP RSSI).
//   * MmWaveChannel — received SNR, dB.
//   * WdmChannel    — shared coupling budget margin, dB (higher = less
//                     geometric loss; each lane subtracts its own
//                     chromatic penalty from it).
// Only ordering and the channel's own `sensitivity` threshold give the
// value meaning; the session core never mixes metrics across channels
// (handover compares *margins*, metric minus sensitivity).
#pragma once

#include <string>

#include "geom/pose.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::phy {

/// Static facts the session core needs about a channel.
struct ChannelInfo {
  std::string name;
  /// Goodput when the link is clean (Gbps).
  double peak_rate_gbps = 0.0;
  /// Metric floor for a usable link, in the channel's own metric units
  /// (received dBm for FSO, SNR dB for mmWave, margin dB for WDM).
  double sensitivity = 0.0;
  /// True when rate_for() is a ladder (mmWave MCS, WDM lane drop-out)
  /// rather than all-or-nothing; the session core then reports per-window
  /// throughput as the mean delivered rate instead of
  /// up_fraction * peak_rate_gbps.
  bool rate_adaptive = false;
};

class Channel {
 public:
  virtual ~Channel() = default;

  virtual const ChannelInfo& info() const noexcept = 0;

  /// Link metric for the headset at `rig_pose` at time `t`.  May mutate
  /// channel-internal geometry state (the mmWave adapter accumulates head
  /// rotation for beam retraining), so call once per slot, in time order.
  virtual double power_at(const geom::Pose& rig_pose, util::SimTimeUs t) = 0;

  /// Instantaneous goodput (Gbps) the metric buys, ignoring link-state
  /// (re-acquisition, retraining).  Pure.
  virtual double rate_for(double power) const = 0;

  /// Advances the channel's link-state machine with this slot's metric;
  /// returns whether traffic flows now (SFP re-acquisition delay for FSO,
  /// beam-retraining outage for mmWave).
  virtual bool step(util::SimTimeUs now, double power) = 0;

  /// Marks the link as up/trained — the §5.3 aligned-start protocol.
  virtual void force_up() {}
};

}  // namespace cyclops::phy

#include "phy/fso_channel.hpp"

namespace cyclops::phy {

ChannelInfo make_sfp_info(const optics::SfpSpec& sfp) {
  ChannelInfo info;
  info.name = sfp.name;
  info.peak_rate_gbps = sfp.goodput_gbps;
  info.sensitivity = sfp.rx_sensitivity_dbm;
  info.rate_adaptive = false;
  return info;
}

FsoChannel::FsoChannel(sim::Scene& scene)
    : scene_(scene),
      info_(make_sfp_info(scene.config().sfp)),
      state_(scene.config().sfp.rx_sensitivity_dbm,
             util::us_from_s(scene.config().sfp.link_up_delay_s)) {}

double FsoChannel::power_at(const geom::Pose& rig_pose, util::SimTimeUs) {
  scene_.set_rig_pose(rig_pose);
  return scene_.received_power_dbm(applied_);
}

}  // namespace cyclops::phy

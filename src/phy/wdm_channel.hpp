// phy::Channel adapter for the §6 WDM future design (optics::wdm): four
// lanes share one steered beam; the geometric coupling loss is common,
// each lane then pays its chromatic penalty against its own sensitivity.
//
// Metric: the shared coupling *budget margin* in dB — minus the shared
// coupling loss, so larger is better and the per-lane thresholds are
// fixed offsets.  Lane i is up iff
//   metric >= lane.rx_sensitivity_dbm + penalty_db(lane) - lane.tx_power_dbm
// which makes rate_for a 5-step ladder (4..0 lanes); the channel is
// rate-adaptive to the session core.  ChannelInfo::sensitivity is the
// best lane's threshold (where the first lane lights up).
#pragma once

#include <functional>

#include "optics/wdm.hpp"
#include "phy/channel.hpp"
#include "phy/link_state.hpp"

namespace cyclops::phy {

class WdmChannel final : public Channel {
 public:
  /// Shared coupling loss (dB, >= 0) of the steered beam for the rig at
  /// `pose` at time `t` — e.g. optics::coupling_loss_from_errors over the
  /// pose's pointing error.
  using LossFn = std::function<double(const geom::Pose&, util::SimTimeUs)>;

  /// `link_up_delay_s` models the NIC re-declaring the aggregate link
  /// (0 = instant, the pure-optics view).
  WdmChannel(optics::WdmTransceiver transceiver,
             optics::CollimatorChromatics collimator, LossFn shared_loss_db,
             double link_up_delay_s = 0.0);

  const ChannelInfo& info() const noexcept override { return info_; }

  double power_at(const geom::Pose& rig_pose, util::SimTimeUs t) override {
    return -shared_loss_db_(rig_pose, t);
  }

  double rate_for(double margin_db) const override {
    return optics::evaluate_wdm_link(transceiver_, collimator_, -margin_db)
        .aggregate_rate_gbps;
  }

  bool step(util::SimTimeUs now, double margin_db) override {
    return state_.step(now, margin_db);
  }

  void force_up() override { state_.force_up(); }

  /// Metric threshold at which lane `i` comes up (see the ladder note
  /// above) — the boundary values the phy tests probe.
  double lane_threshold(std::size_t i) const;

  const optics::WdmTransceiver& transceiver() const noexcept {
    return transceiver_;
  }

 private:
  optics::WdmTransceiver transceiver_;
  optics::CollimatorChromatics collimator_;
  LossFn shared_loss_db_;
  ChannelInfo info_;
  LinkStateMachine state_;
};

}  // namespace cyclops::phy

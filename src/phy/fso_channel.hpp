// phy::Channel adapter for the Cyclops FSO optics chain: the calibrated
// scene (diverging beam, GM steering, fiber coupling) plus the SFP's
// rate/sensitivity table and re-acquisition state machine.  One adapter
// covers both prototypes — 10G SFP+ ZR and 25G SFP28 — since the spec
// rides in SceneConfig::sfp.
//
// The metric is the received optical power (dBm) at the currently applied
// GM voltages; the steering plane (tracker + TP controller) writes those
// voltages via set_voltages, making this the plant the session core's
// processes drive.
#pragma once

#include "phy/channel.hpp"
#include "phy/link_state.hpp"
#include "sim/scene.hpp"

namespace cyclops::phy {

/// Builds the ChannelInfo an SFP spec implies (fixed-rate: goodput at or
/// above sensitivity, nothing below).  Shared with code that only needs
/// the table, not a live scene (e.g. bench/baseline_mmwave's Cyclops
/// side).
ChannelInfo make_sfp_info(const optics::SfpSpec& sfp);

class FsoChannel final : public Channel {
 public:
  /// Borrows `scene`; the adapter neither owns nor copies it, so scene
  /// mutations (occluders, config) are visible immediately.
  explicit FsoChannel(sim::Scene& scene);

  const ChannelInfo& info() const noexcept override { return info_; }

  /// Moves the rig and reads the fiber power at the applied voltages.
  double power_at(const geom::Pose& rig_pose, util::SimTimeUs t) override;

  double rate_for(double power_dbm) const override {
    return power_dbm >= info_.sensitivity ? info_.peak_rate_gbps : 0.0;
  }

  bool step(util::SimTimeUs now, double power_dbm) override {
    return state_.step(now, power_dbm);
  }

  void force_up() override { state_.force_up(); }

  /// The steering plane's write port: what the GMs currently hold.
  void set_voltages(const sim::Voltages& v) noexcept { applied_ = v; }
  const sim::Voltages& voltages() const noexcept { return applied_; }

  sim::Scene& scene() noexcept { return scene_; }

 private:
  sim::Scene& scene_;
  ChannelInfo info_;
  LinkStateMachine state_;
  sim::Voltages applied_{};
};

}  // namespace cyclops::phy

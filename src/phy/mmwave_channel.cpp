#include "phy/mmwave_channel.hpp"

#include "geom/pose.hpp"

namespace cyclops::phy {
namespace {

ChannelInfo make_mmwave_info(const baseline::MmWaveConfig& radio) {
  ChannelInfo info;
  info.name = "mmwave-60ghz";
  info.peak_rate_gbps =
      baseline::mcs_table().back().phy_rate_gbps * radio.mac_efficiency;
  info.sensitivity = baseline::mcs_table().front().min_snr_db;
  info.rate_adaptive = true;
  return info;
}

}  // namespace

MmWaveChannel::MmWaveChannel(MmWaveChannelConfig config,
                             obs::Registry* registry)
    : config_(std::move(config)),
      session_(config_.radio, registry),
      info_(make_mmwave_info(config_.radio)) {}

MmWaveChannel::MmWaveChannel(MmWaveChannelConfig config,
                             const runtime::Context& ctx)
    : MmWaveChannel(std::move(config), &ctx.registry()) {}

double MmWaveChannel::power_at(const geom::Pose& rig_pose, util::SimTimeUs t) {
  if (have_pose_) {
    cum_rotation_rad_ += geom::rotation_distance(last_pose_, rig_pose);
  }
  last_pose_ = rig_pose;
  have_pose_ = true;
  last_blocked_ = config_.blockage && config_.blockage(t);
  const double range =
      geom::distance(rig_pose.translation(), config_.ap_position);
  return session_.link().snr_db(range, last_blocked_);
}

double MmWaveChannel::rate_for(double snr_db) const {
  return session_.link().phy_rate_gbps(snr_db) *
         config_.radio.mac_efficiency;
}

bool MmWaveChannel::step(util::SimTimeUs now, double snr_db) {
  const bool retraining =
      session_.observe(now, cum_rotation_rad_, snr_db, last_blocked_);
  return !retraining && snr_db >= info_.sensitivity;
}

}  // namespace cyclops::phy

#include "net/adaptive_stream.hpp"

#include <algorithm>
#include <cmath>

namespace cyclops::net {

StreamMode AdaptiveStreamController::step(util::SimTimeUs now,
                                          double capacity_gbps) {
  const double dt =
      last_step_ == 0 ? 1e-3 : util::us_to_s(now - last_step_);
  last_step_ = now;

  // How satisfied is the *raw* demand right now?  (Judge against raw so
  // the controller can tell when an upgrade would succeed.)
  const double satisfied =
      std::clamp(capacity_gbps / config_.raw_rate_gbps, 0.0, 1.0);
  const double alpha =
      1.0 - std::exp(-dt / util::us_to_s(config_.window));
  satisfied_ema_ += alpha * (satisfied - satisfied_ema_);

  const bool dwell_ok = now - last_switch_ >= config_.min_dwell;
  if (mode_ == StreamMode::kRaw &&
      satisfied_ema_ < config_.downgrade_threshold && dwell_ok) {
    mode_ = StreamMode::kCompressed;
    ++switches_;
    last_switch_ = now;
  } else if (mode_ == StreamMode::kCompressed &&
             satisfied_ema_ > config_.upgrade_threshold && dwell_ok) {
    mode_ = StreamMode::kRaw;
    ++switches_;
    last_switch_ = now;
  }
  return mode_;
}

}  // namespace cyclops::net

// AdaptiveStreamController is now a header-only adapter over
// stream::EncoderRateAdapter; this TU just anchors the target's source
// list.
#include "net/adaptive_stream.hpp"

// Adaptive stream controller: raw video when the link allows it, a
// compressed fallback when it does not.
//
// §2.1's trade-off, operationalized: streaming raw frames avoids the
// decode burden (and its motion-to-photon latency cost) but needs tens of
// Gbps; compressed streaming survives on WiFi-class rates at the cost of
// added latency and quality.  This controller watches the delivered-rate
// history and switches modes with hysteresis, so a Cyclops link that
// briefly drops (occlusion, fast motion) degrades to "compressed" instead
// of freezing — and upgrades back when the optical link returns.
//
// Since the streaming data plane landed (src/stream/, DESIGN.md §14)
// this class is a thin adapter over stream::EncoderRateAdapter, which
// carries the identical switching arithmetic (tests/stream_abr_test.cpp
// proves bit-exactness over the 500-trace library) plus the pipeline's
// backpressure extension, disabled here.
#pragma once

#include "obs/registry.hpp"
#include "runtime/context.hpp"
#include "stream/rate_adapter.hpp"

namespace cyclops::net {

/// kRaw = uncompressed frames over the FSO link; kCompressed = codec
/// fallback (e.g. HEVC at ~0.4 Gbps).  The one definition lives with the
/// rate adapter.
using StreamMode = stream::EncoderMode;

/// Same fields and defaults as ever (the added backpressure_weight stays
/// at its disabled default of 0 here).
using AdaptiveConfig = stream::RatePolicy;

class AdaptiveStreamController {
 public:
  explicit AdaptiveStreamController(AdaptiveConfig config) : core_(config) {}

  /// Context constructor: mode metrics land in ctx.registry() (handles
  /// hoisted once, here) — the one-argument form of construct + set_obs.
  AdaptiveStreamController(AdaptiveConfig config, const runtime::Context& ctx)
      : core_(config, ctx) {}

  /// Attaches mode metrics: adaptive_switches_total counters (labelled by
  /// destination mode) and adaptive_mode_dwell_us histograms (time spent
  /// in the mode being left, labelled by that mode).  Pass nullptr to
  /// detach.  No-op in CYCLOPS_OBS=OFF builds.
  void set_obs(obs::Registry* registry) { core_.set_obs(registry); }

  /// Feeds one slot: the link's current deliverable capacity.  Returns
  /// the mode to use for frames rendered now.
  StreamMode step(util::SimTimeUs now, double capacity_gbps) {
    return core_.step(now, capacity_gbps);
  }

  StreamMode mode() const noexcept { return core_.mode(); }
  int mode_switches() const noexcept { return core_.mode_switches(); }

  /// Rate demanded from the link in the current mode.
  double current_rate_gbps() const noexcept {
    return core_.current_rate_gbps();
  }

  /// End-to-end latency penalty of the current mode.
  double current_decode_latency_ms() const noexcept {
    return core_.current_decode_latency_ms();
  }

  const AdaptiveConfig& config() const noexcept { return core_.policy(); }

 private:
  stream::EncoderRateAdapter core_;
};

}  // namespace cyclops::net

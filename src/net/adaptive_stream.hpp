// Adaptive stream controller: raw video when the link allows it, a
// compressed fallback when it does not.
//
// §2.1's trade-off, operationalized: streaming raw frames avoids the
// decode burden (and its motion-to-photon latency cost) but needs tens of
// Gbps; compressed streaming survives on WiFi-class rates at the cost of
// added latency and quality.  This controller watches the delivered-rate
// history and switches modes with hysteresis, so a Cyclops link that
// briefly drops (occlusion, fast motion) degrades to "compressed" instead
// of freezing — and upgrades back when the optical link returns.
#pragma once

#include "net/frame_source.hpp"
#include "obs/registry.hpp"
#include "runtime/context.hpp"

namespace cyclops::net {

enum class StreamMode {
  kRaw,         ///< Uncompressed frames over the FSO link.
  kCompressed,  ///< Codec fallback (e.g. HEVC at ~0.4 Gbps).
};

struct AdaptiveConfig {
  double raw_rate_gbps = 20.0;
  double compressed_rate_gbps = 0.4;
  /// Extra motion-to-photon latency the decoder adds in compressed mode.
  double decode_latency_ms = 8.0;
  /// Downgrade when the delivered fraction over the window drops below
  /// this; upgrade back above the high-water mark (hysteresis).
  double downgrade_threshold = 0.90;
  double upgrade_threshold = 0.995;
  /// Sliding window over which delivery is judged.
  util::SimTimeUs window = 500000;  // 0.5 s
  /// Minimum dwell time in a mode (prevents flapping).
  util::SimTimeUs min_dwell = 1000000;  // 1 s
};

class AdaptiveStreamController {
 public:
  explicit AdaptiveStreamController(AdaptiveConfig config)
      : config_(config) {}

  /// Context constructor: mode metrics land in ctx.registry() (handles
  /// hoisted once, here) — the one-argument form of construct + set_obs.
  AdaptiveStreamController(AdaptiveConfig config, const runtime::Context& ctx)
      : AdaptiveStreamController(config) {
    set_obs(&ctx.registry());
  }

  /// Attaches mode metrics: adaptive_switches_total counters (labelled by
  /// destination mode) and adaptive_mode_dwell_us histograms (time spent
  /// in the mode being left, labelled by that mode).  Pass nullptr to
  /// detach.  No-op in CYCLOPS_OBS=OFF builds.
  void set_obs(obs::Registry* registry);

  /// Feeds one slot: the link's current deliverable capacity.  Returns
  /// the mode to use for frames rendered now.
  StreamMode step(util::SimTimeUs now, double capacity_gbps);

  StreamMode mode() const noexcept { return mode_; }
  int mode_switches() const noexcept { return switches_; }

  /// Rate demanded from the link in the current mode.
  double current_rate_gbps() const noexcept {
    return mode_ == StreamMode::kRaw ? config_.raw_rate_gbps
                                     : config_.compressed_rate_gbps;
  }

  /// End-to-end latency penalty of the current mode.
  double current_decode_latency_ms() const noexcept {
    return mode_ == StreamMode::kRaw ? 0.0 : config_.decode_latency_ms;
  }

  const AdaptiveConfig& config() const noexcept { return config_; }

 private:
  AdaptiveConfig config_;
  StreamMode mode_ = StreamMode::kRaw;
  int switches_ = 0;
  util::SimTimeUs last_switch_ = 0;
  // Sliding accounting: how much of the demanded rate the link could
  // carry over the recent window (exponential moving average matched to
  // the window length).
  double satisfied_ema_ = 1.0;
  util::SimTimeUs last_step_ = 0;

  // Hoisted metric handles (null when detached / OBS=OFF).
  obs::Counter* m_switch_to_raw_ = nullptr;
  obs::Counter* m_switch_to_compressed_ = nullptr;
  obs::Histogram* m_dwell_raw_us_ = nullptr;
  obs::Histogram* m_dwell_compressed_us_ = nullptr;
};

}  // namespace cyclops::net

#include "net/frame_source.hpp"

#include <algorithm>

namespace cyclops::net {

std::optional<Frame> FrameSource::poll(util::SimTimeUs now) {
  if (now < next_time_) return std::nullopt;
  Frame frame;
  frame.id = next_id_++;
  frame.render_time = next_time_;
  const double jitter =
      config_.size_jitter > 0.0 ? rng_.normal(1.0, config_.size_jitter) : 1.0;
  frame.bits = config_.mean_frame_bits() * std::max(0.1, jitter);
  next_time_ += config_.frame_period();
  return frame;
}

}  // namespace cyclops::net

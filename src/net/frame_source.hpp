// Rendered-frame traffic source.
//
// Models the renderer-to-VRH payload the paper motivates in §2.1: raw
// (uncompressed) video frames at a fixed rate.  E.g. an 8K RGB stream at
// 30 fps is ~24 Gbps (0.8 Gbit per frame); a 90 fps stream at 20 Gbps is
// ~222 Mbit per frame.  Frames are generated on a fixed clock; sizes can
// carry a small jitter to model per-frame content variation.
#pragma once

#include <cstdint>
#include <optional>

#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::net {

struct FrameSourceConfig {
  double fps = 90.0;
  double stream_rate_gbps = 20.0;
  /// Relative per-frame size jitter (sigma as a fraction of the mean).
  double size_jitter = 0.0;

  double mean_frame_bits() const noexcept {
    return stream_rate_gbps * 1e9 / fps;
  }
  util::SimTimeUs frame_period() const noexcept {
    return static_cast<util::SimTimeUs>(1e6 / fps);
  }
};

struct Frame {
  std::int64_t id = 0;
  util::SimTimeUs render_time = 0;  ///< When the renderer finished it.
  double bits = 0.0;
};

/// Emits frames on the renderer's clock.
class FrameSource {
 public:
  FrameSource(FrameSourceConfig config, util::Rng rng)
      : config_(config), rng_(rng) {}

  /// The next frame whose render time is <= now, if due.
  std::optional<Frame> poll(util::SimTimeUs now);

  const FrameSourceConfig& config() const noexcept { return config_; }
  std::int64_t frames_emitted() const noexcept { return next_id_; }

 private:
  FrameSourceConfig config_;
  util::Rng rng_;
  std::int64_t next_id_ = 0;
  util::SimTimeUs next_time_ = 0;
};

}  // namespace cyclops::net

// Frame streamer: pushes rendered frames over the (time-varying) FSO link
// and tracks the user-experience metrics the paper's §5.4 analysis cares
// about — frames delivered in time vs frames lost to link-off periods,
// and the display-side freeze pattern.
//
// Policy: frames queue FIFO; a frame still undelivered past its deadline
// (a small multiple of the frame period — stale frames are useless in VR)
// is dropped, and the display re-shows the previous frame (a "freeze").
//
// DEADLINE BOUNDARY (pinned by net_test.DeadlineBoundaryIsExact): the
// expiry predicate is `now > render_time + deadline`.  A frame whose
// delivery completes at exactly render_time + deadline is on-time; a
// step one microsecond past the deadline drops it.  With the default
// 22000 µs deadline, a frame rendered at t is droppable from t + 22001.
//
// Since the streaming data plane landed (src/stream/, DESIGN.md §14)
// this class is a thin adapter: the queueing/deadline mechanism is
// stream::WireQueue and the QoE arithmetic is stream::FreezeLedger,
// both shared with the jitter-buffered pipeline.  Public API, metric
// names, and per-frame outcomes are unchanged from the pre-stream
// implementation (tests/net_test.cpp pins them).
#pragma once

#include "net/frame_source.hpp"
#include "obs/registry.hpp"
#include "runtime/context.hpp"
#include "stream/freeze_ledger.hpp"
#include "stream/wire_queue.hpp"

namespace cyclops::net {

/// Same fields and defaults as ever; now the one definition lives with
/// the wire queue.
using StreamerConfig = stream::WireQueueConfig;

/// QoE stats (offered/delivered/dropped, latency, freezes); the one
/// definition lives with the freeze ledger.
using StreamStats = stream::LedgerStats;

class FrameStreamer {
 public:
  explicit FrameStreamer(StreamerConfig config)
      : wire_(config, ledger_) {}

  /// Context constructor: stream metrics land in ctx.registry() (handles
  /// hoisted once, here) — the one-argument form of construct + set_obs.
  FrameStreamer(StreamerConfig config, const runtime::Context& ctx)
      : FrameStreamer(config) {
    set_obs(&ctx.registry());
  }

  FrameStreamer(const FrameStreamer&) = delete;
  FrameStreamer& operator=(const FrameStreamer&) = delete;

  /// Attaches stream metrics: stream_frames_{offered,delivered,dropped}
  /// _total and stream_freezes_total counters plus the
  /// stream_delivery_latency_us histogram.  Handles are hoisted here; pass
  /// nullptr to detach.  No-op in CYCLOPS_OBS=OFF builds.
  void set_obs(obs::Registry* registry) { ledger_.set_obs(registry); }

  /// Enqueues a rendered frame.
  void offer(const Frame& frame) {
    wire_.offer(frame.id, frame.render_time, frame.bits);
  }

  /// Advances one slot of `slot_duration`; `capacity_gbps` is the link's
  /// deliverable rate during the slot (0 when the link is down).  See
  /// DEADLINE BOUNDARY above for the expiry semantics.
  void step(util::SimTimeUs now, util::SimTimeUs slot_duration,
            double capacity_gbps) {
    wire_.step(now, slot_duration, capacity_gbps);
  }

  const StreamStats& stats() const noexcept { return ledger_.stats(); }
  std::size_t queue_depth() const noexcept { return wire_.depth(); }

 private:
  stream::FreezeLedger ledger_;
  stream::WireQueue wire_;  ///< Holds a pointer to ledger_: declared after.
};

}  // namespace cyclops::net

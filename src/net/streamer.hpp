// Frame streamer: pushes rendered frames over the (time-varying) FSO link
// and tracks the user-experience metrics the paper's §5.4 analysis cares
// about — frames delivered in time vs frames lost to link-off periods,
// and the display-side freeze pattern.
//
// Policy: frames queue FIFO; a frame still undelivered past its deadline
// (a small multiple of the frame period — stale frames are useless in VR)
// is dropped, and the display re-shows the previous frame (a "freeze").
#pragma once

#include <deque>
#include <vector>

#include "net/frame_source.hpp"
#include "obs/registry.hpp"
#include "runtime/context.hpp"

namespace cyclops::net {

struct StreamerConfig {
  /// Delivery deadline relative to render time.
  util::SimTimeUs deadline = 22000;  ///< ~2 frame periods at 90 fps.
  /// Transmission overhead factor (protocol framing, FEC).
  double overhead = 1.05;
};

struct StreamStats {
  std::int64_t frames_offered = 0;
  std::int64_t frames_delivered = 0;
  std::int64_t frames_dropped = 0;
  double avg_delivery_latency_ms = 0.0;  ///< Render -> fully received.
  double max_delivery_latency_ms = 0.0;
  /// Display freezes: runs of >= 2 consecutive dropped frames.
  int freeze_events = 0;
  int longest_freeze_frames = 0;
  /// Id of the most recently delivered frame (-1 before the first); while
  /// frames drop, the display keeps re-showing this one.
  std::int64_t last_delivered_id = -1;

  double delivery_rate() const {
    return frames_offered > 0
               ? static_cast<double>(frames_delivered) / frames_offered
               : 0.0;
  }
};

class FrameStreamer {
 public:
  explicit FrameStreamer(StreamerConfig config) : config_(config) {}

  /// Context constructor: stream metrics land in ctx.registry() (handles
  /// hoisted once, here) — the one-argument form of construct + set_obs.
  FrameStreamer(StreamerConfig config, const runtime::Context& ctx)
      : FrameStreamer(config) {
    set_obs(&ctx.registry());
  }

  /// Attaches stream metrics: stream_frames_{offered,delivered,dropped}
  /// _total and stream_freezes_total counters plus the
  /// stream_delivery_latency_us histogram.  Handles are hoisted here; pass
  /// nullptr to detach.  No-op in CYCLOPS_OBS=OFF builds.
  void set_obs(obs::Registry* registry);

  /// Enqueues a rendered frame.
  void offer(const Frame& frame);

  /// Advances one slot of `slot_duration`; `capacity_gbps` is the link's
  /// deliverable rate during the slot (0 when the link is down).
  void step(util::SimTimeUs now, util::SimTimeUs slot_duration,
            double capacity_gbps);

  const StreamStats& stats() const noexcept { return stats_; }
  std::size_t queue_depth() const noexcept { return queue_.size(); }

 private:
  struct InFlight {
    Frame frame;
    double bits_remaining = 0.0;
  };

  void record_drop();
  void record_delivery(util::SimTimeUs now, const Frame& frame);

  StreamerConfig config_;
  std::deque<InFlight> queue_;
  StreamStats stats_;
  double latency_sum_ms_ = 0.0;
  int current_drop_run_ = 0;

  // Hoisted metric handles (null when detached / OBS=OFF).
  obs::Counter* m_offered_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  obs::Counter* m_freezes_ = nullptr;
  obs::Histogram* m_latency_us_ = nullptr;
};

}  // namespace cyclops::net

#include "net/streamer.hpp"

#include <algorithm>

#include "obs/config.hpp"

namespace cyclops::net {

void FrameStreamer::set_obs(obs::Registry* registry) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  if (registry == nullptr) {
    m_offered_ = m_delivered_ = m_dropped_ = m_freezes_ = nullptr;
    m_latency_us_ = nullptr;
    return;
  }
  m_offered_ = &registry->counter("stream_frames_offered_total");
  m_delivered_ = &registry->counter("stream_frames_delivered_total");
  m_dropped_ = &registry->counter("stream_frames_dropped_total");
  m_freezes_ = &registry->counter("stream_freezes_total");
  m_latency_us_ = &registry->histogram("stream_delivery_latency_us",
                                       obs::HistogramSpec::duration_us());
}

void FrameStreamer::offer(const Frame& frame) {
  ++stats_.frames_offered;
  if (m_offered_ != nullptr) m_offered_->inc();
  queue_.push_back({frame, frame.bits * config_.overhead});
}

void FrameStreamer::record_drop() {
  ++stats_.frames_dropped;
  ++current_drop_run_;
  if (current_drop_run_ == 2) {
    ++stats_.freeze_events;
    if (m_freezes_ != nullptr) m_freezes_->inc();
  }
  stats_.longest_freeze_frames =
      std::max(stats_.longest_freeze_frames, current_drop_run_);
  if (m_dropped_ != nullptr) m_dropped_->inc();
}

void FrameStreamer::record_delivery(util::SimTimeUs now, const Frame& frame) {
  ++stats_.frames_delivered;
  stats_.last_delivered_id = frame.id;
  current_drop_run_ = 0;
  const double latency_ms = util::us_to_ms(now - frame.render_time);
  latency_sum_ms_ += latency_ms;
  stats_.avg_delivery_latency_ms =
      latency_sum_ms_ / static_cast<double>(stats_.frames_delivered);
  stats_.max_delivery_latency_ms =
      std::max(stats_.max_delivery_latency_ms, latency_ms);
  if (m_delivered_ != nullptr) {
    m_delivered_->inc();
    m_latency_us_->record(static_cast<double>(now - frame.render_time));
  }
}

void FrameStreamer::step(util::SimTimeUs now, util::SimTimeUs slot_duration,
                         double capacity_gbps) {
  // Expire frames that can no longer make their deadline.
  while (!queue_.empty() &&
         now > queue_.front().frame.render_time + config_.deadline) {
    record_drop();
    queue_.pop_front();
  }

  double budget_bits = capacity_gbps * 1e9 * util::us_to_s(slot_duration);
  while (budget_bits > 0.0 && !queue_.empty()) {
    InFlight& head = queue_.front();
    const double sent = std::min(budget_bits, head.bits_remaining);
    head.bits_remaining -= sent;
    budget_bits -= sent;
    if (head.bits_remaining <= 0.0) {
      record_delivery(now + slot_duration, head.frame);
      queue_.pop_front();
    }
  }
}

}  // namespace cyclops::net

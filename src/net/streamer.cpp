// FrameStreamer is now a header-only adapter over stream::WireQueue +
// stream::FreezeLedger; this TU just anchors the target's source list.
#include "net/streamer.hpp"

#include "runtime/context.hpp"

namespace cyclops::runtime {

Context::Context(util::ThreadPool& pool, obs::Registry& registry,
                 std::uint64_t seed)
    : pool_(&pool),
      registry_(&registry),
      clock_(std::make_unique<util::SimClock>()),
      base_(seed),
      seed_(seed),
      wall_origin_(std::chrono::steady_clock::now()) {}

Context::Context(const Options& options)
    : pool_(nullptr),
      registry_(nullptr),
      lazy_(true),
      lazy_threads_(options.threads),
      clock_(std::make_unique<util::SimClock>()),
      base_(options.seed),
      seed_(options.seed),
      wall_origin_(std::chrono::steady_clock::now()) {}

util::ThreadPool& Context::materialize_pool() const noexcept {
  owned_pool_ = std::make_unique<util::ThreadPool>(lazy_threads_);
  pool_ = owned_pool_.get();
  return *pool_;
}

obs::Registry& Context::materialize_registry() const noexcept {
  owned_registry_ = std::make_unique<obs::Registry>();
  registry_ = owned_registry_.get();
  return *registry_;
}

Context Context::isolated(const Options& options) { return Context(options); }

Context& Context::default_ctx() {
  static Context ctx(util::ThreadPool::global(), obs::Registry::global());
  return ctx;
}

}  // namespace cyclops::runtime

#include "runtime/context.hpp"

namespace cyclops::runtime {

Context::Context(util::ThreadPool& pool, obs::Registry& registry,
                 std::uint64_t seed)
    : pool_(&pool),
      registry_(&registry),
      clock_(std::make_unique<util::SimClock>()),
      base_(seed),
      seed_(seed),
      wall_origin_(std::chrono::steady_clock::now()) {}

Context::Context(std::unique_ptr<util::ThreadPool> pool,
                 std::unique_ptr<obs::Registry> registry, std::uint64_t seed)
    : owned_pool_(std::move(pool)),
      owned_registry_(std::move(registry)),
      pool_(owned_pool_.get()),
      registry_(owned_registry_.get()),
      clock_(std::make_unique<util::SimClock>()),
      base_(seed),
      seed_(seed),
      wall_origin_(std::chrono::steady_clock::now()) {}

Context Context::isolated(const Options& options) {
  return Context(std::make_unique<util::ThreadPool>(options.threads),
                 std::make_unique<obs::Registry>(), options.seed);
}

Context& Context::default_ctx() {
  static Context ctx(util::ThreadPool::global(), obs::Registry::global());
  return ctx;
}

}  // namespace cyclops::runtime

// Per-session runtime context: the four cross-cutting resources every
// plane used to reach through process-wide singletons for, bundled into
// one dependency-injected value.
//
//   * execution   — a util::ThreadPool (owned or borrowed)
//   * telemetry   — an obs::Registry plus an obs::Tracer bound to it
//   * randomness  — a base util::Rng; consumers derive keyed split()
//                   children so their streams are order-independent
//   * time        — a util::SimClock the session's schedulers ride, plus
//                   a wall-clock origin for wall-time bookkeeping
//
// Context::default_ctx() borrows the process-wide pool and registry, so a
// call site migrated from ThreadPool::global() / Registry::global() to a
// defaulted Context parameter behaves exactly as before — migration is
// incremental, one signature at a time.  Context::isolated() instead owns
// fresh copies of everything, which is what lets N sessions run
// concurrently in one process without sharing (or corrupting) each
// other's metrics, RNG streams, pool, or clock: give each session its own
// isolated context and its outputs and exported metrics are bit-identical
// to running it alone (link::run_concurrent_sessions proves this in
// tests; see DESIGN.md §11).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/thread_pool.hpp"

namespace cyclops::runtime {

class Context {
 public:
  /// Base seed of default_ctx(): "cyclops" in ASCII.  Any consumer keyed
  /// off the default context draws from this documented stream.
  static constexpr std::uint64_t kDefaultSeed = 0x6379636c6f7073ULL;

  struct Options {
    std::uint64_t seed = kDefaultSeed;
    /// Worker threads of the owned pool.  1 (the default) is a purely
    /// inline pool — the right choice when sessions themselves are fanned
    /// out in parallel; 0 resolves CYCLOPS_THREADS / hardware concurrency.
    std::size_t threads = 1;
  };

  /// Borrowing context: wires existing resources (all must outlive it).
  Context(util::ThreadPool& pool, obs::Registry& registry,
          std::uint64_t seed = kDefaultSeed);

  /// Fully isolated context: owns its own pool, registry, and clock.
  static Context isolated(const Options& options);
  static Context isolated() { return isolated(Options()); }

  /// The shared process-wide context: borrows ThreadPool::global() and
  /// obs::Registry::global().  Call sites with a defaulted Context
  /// parameter reproduce the pre-Context global behavior through it.
  static Context& default_ctx();

  Context(Context&&) noexcept = default;
  Context& operator=(Context&&) noexcept = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Isolated contexts materialize their owned pool/registry lazily on
  /// first access (LP-scale slimming: a fleet session that never fans out
  /// or records a metric allocates neither).  First access must happen on
  /// one thread — in practice the session thread, before any fan-out —
  /// which every current call site satisfies; after that the reference is
  /// stable (unique_ptr target, so Context moves keep it valid too).
  util::ThreadPool& pool() const noexcept {
    return pool_ != nullptr ? *pool_ : materialize_pool();
  }
  obs::Registry& registry() const noexcept {
    return registry_ != nullptr ? *registry_ : materialize_registry();
  }
  /// Span factory bound to this context's registry (cheap value type).
  obs::Tracer tracer() const noexcept { return obs::Tracer(&registry()); }

  /// The session's simulation clock.  Session drivers run their scheduler
  /// on it (a context represents one session timeline; drivers reset it
  /// at session start).  Stable address across Context moves.
  util::SimClock& clock() const noexcept { return *clock_; }

  /// Wall-clock microseconds since this context was created (profiling /
  /// log stamps; never feeds a determinism-checked metric).
  double wall_elapsed_us() const noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - wall_origin_)
        .count();
  }

  std::uint64_t seed() const noexcept { return seed_; }
  /// Keyed child generator: a pure function of (seed, key), independent
  /// of call order — consumer i should take rng(i) (or a documented
  /// per-plane key) so streams never alias across consumers.
  util::Rng rng(std::uint64_t key) const noexcept { return base_.split(key); }
  /// Copy of the base generator (for call sites that thread a mutable
  /// Rng& through a pipeline, e.g. calibration).
  util::Rng base_rng() const noexcept { return base_; }

  /// True for isolated contexts even before their lazily-created pool /
  /// registry materializes: ownership is a property of the context's
  /// mode, not of whether the resource has been touched yet.
  bool owns_pool() const noexcept { return lazy_ || owned_pool_ != nullptr; }
  bool owns_registry() const noexcept {
    return lazy_ || owned_registry_ != nullptr;
  }

 private:
  /// Lazy (isolated) mode: resources materialize on first access.
  explicit Context(const Options& options);

  util::ThreadPool& materialize_pool() const noexcept;
  obs::Registry& materialize_registry() const noexcept;

  // Owned resources first so borrowed-or-owned pointers below always
  // outlive nothing they point at; unique_ptrs keep addresses stable
  // across Context moves (handed-out references stay valid).  The owned
  // slots are mutable because isolated contexts fill them lazily behind
  // the const accessors.
  mutable std::unique_ptr<util::ThreadPool> owned_pool_;
  mutable std::unique_ptr<obs::Registry> owned_registry_;
  mutable util::ThreadPool* pool_;
  mutable obs::Registry* registry_;
  bool lazy_ = false;              ///< isolated mode (owns everything)
  std::size_t lazy_threads_ = 1;   ///< owned-pool width when it appears
  std::unique_ptr<util::SimClock> clock_;
  util::Rng base_;
  std::uint64_t seed_;
  std::chrono::steady_clock::time_point wall_origin_;
};

}  // namespace cyclops::runtime

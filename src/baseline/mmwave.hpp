// IEEE 802.11ad-style 60 GHz mmWave link model — the state-of-the-art
// wireless-VRH technology Cyclops is motivated against (§1, §2.1: the
// HTC Vive adapter and research prototypes [22, 60] top out at a few
// Gbps).
//
// Modeled effects: Friis path loss at 60 GHz, a single-carrier MCS
// ladder up to 6.76 Gbps PHY (MAC efficiency applied), blockage (LOS
// obstruction costs tens of dB), and periodic beam retraining after the
// head rotates out of the current sector.  Deliberately favorable
// assumptions (ideal rate adaptation, instantaneous MCS switching) — the
// comparison's point is the *ceiling*, not the details.
#pragma once

#include <vector>

#include "obs/registry.hpp"
#include "runtime/context.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::baseline {

struct MmWaveConfig {
  double tx_power_dbm = 10.0;
  double tx_antenna_gain_dbi = 17.0;  ///< ~32-element phased array.
  double rx_antenna_gain_dbi = 10.0;
  double carrier_ghz = 60.0;
  double bandwidth_ghz = 2.16;        ///< One 802.11ad channel.
  double noise_figure_db = 7.0;
  double implementation_loss_db = 5.0;
  double blockage_loss_db = 25.0;     ///< Human-body NLOS penalty.
  double mac_efficiency = 0.65;
  /// Sector width: rotating further than this since the last training
  /// forces a re-train.
  double beamwidth_deg = 12.0;
  double retrain_time_ms = 10.0;      ///< SLS sweep duration.
};

/// One MCS rung: minimum SNR and PHY rate.
struct McsEntry {
  double min_snr_db;
  double phy_rate_gbps;
};

/// The 802.11ad single-carrier ladder (MCS 1-12).
const std::vector<McsEntry>& mcs_table();

/// Ladder index (1-based, matching the 802.11ad MCS numbering) the SNR
/// sustains; 0 when even MCS 1 is out of reach.
int mcs_index_for(double snr_db);

class MmWaveLink {
 public:
  explicit MmWaveLink(MmWaveConfig config) : config_(config) {}

  /// Thermal noise floor (dBm) for the configured bandwidth.
  double noise_floor_dbm() const;

  /// Received SNR at `range` (m), optionally blocked.
  double snr_db(double range, bool blocked) const;

  /// Ideal-adaptation PHY rate for an SNR (0 below the lowest MCS).
  double phy_rate_gbps(double snr) const;

  /// MAC-layer goodput at `range`, accounting for blockage and whether a
  /// retrain is in progress.
  double goodput_gbps(double range, bool blocked, bool retraining) const {
    if (retraining) return 0.0;
    return phy_rate_gbps(snr_db(range, blocked)) * config_.mac_efficiency;
  }

  const MmWaveConfig& config() const noexcept { return config_; }

 private:
  MmWaveConfig config_;
};

/// Tracks the beam-training state across head rotation: call on every
/// step with the cumulative rotation angle since the session start.
class BeamTrainingState {
 public:
  explicit BeamTrainingState(const MmWaveConfig& config)
      : beamwidth_rad_(config.beamwidth_deg * 3.14159265358979 / 180.0),
        retrain_us_(static_cast<util::SimTimeUs>(config.retrain_time_ms *
                                                 1000.0)) {}

  /// Returns true while a retrain blocks traffic.
  bool step(util::SimTimeUs now, double orientation_rad);

  int retrains() const noexcept { return retrains_; }

 private:
  double beamwidth_rad_;
  util::SimTimeUs retrain_us_;
  double trained_at_rad_ = 0.0;
  util::SimTimeUs retrain_done_ = 0;
  int retrains_ = 0;
};

/// Per-session mmWave link state with telemetry: beam training plus
/// retrain / MCS-dwell / blockage-span instrumentation.  This is what the
/// phy::MmWaveChannel adapter drives once per slot; metrics land in the
/// registry you pass (per-session isolation via runtime::Context — the
/// baseline plane never reaches for the process-wide registry itself).
///
/// Metrics (all sim-time, deterministic; no-ops in CYCLOPS_OBS=OFF):
///   mmwave_retrains_total            — beam re-trainings triggered.
///   mmwave_retrain_slots_total       — slots with traffic blocked by one.
///   mmwave_blocked_slots_total       — slots with the LOS path blocked.
///   mmwave_mcs_dwell_us{mcs=<i>}     — time spent on each MCS rung
///                                      (rung 0 = below the ladder).
///   mmwave_blockage_us               — contiguous blockage span lengths.
class MmWaveSession {
 public:
  explicit MmWaveSession(const MmWaveConfig& config,
                         obs::Registry* registry = nullptr);
  MmWaveSession(const MmWaveConfig& config, const runtime::Context& ctx)
      : MmWaveSession(config, &ctx.registry()) {}

  /// One slot: cumulative head rotation drives retraining, the SNR drives
  /// the MCS dwell accounting.  Returns true while a retrain blocks
  /// traffic.  Call in time order; call finish() once at session end to
  /// flush the open dwell/blockage spans.
  bool observe(util::SimTimeUs now, double cumulative_rotation_rad,
               double snr_db, bool blocked);
  void finish(util::SimTimeUs now);

  int retrains() const noexcept { return training_.retrains(); }
  const MmWaveLink& link() const noexcept { return link_; }

 private:
  void record_mcs(util::SimTimeUs now, int mcs);

  MmWaveLink link_;
  BeamTrainingState training_;
  obs::Registry* registry_ = nullptr;

  int cur_mcs_ = -1;  ///< -1 until the first observed slot.
  util::SimTimeUs mcs_since_ = 0;
  int blocked_state_ = -1;  ///< -1 / 0 / 1: unknown / clear / blocked.
  util::SimTimeUs blocked_since_ = 0;

  // Hoisted counter handles (null without a registry / with OBS off).
  obs::Counter* m_retrains_ = nullptr;
  obs::Counter* m_retrain_slots_ = nullptr;
  obs::Counter* m_blocked_slots_ = nullptr;
  obs::Histogram* m_blockage_us_ = nullptr;
};

}  // namespace cyclops::baseline

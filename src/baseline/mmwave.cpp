#include "baseline/mmwave.hpp"

#include <cmath>
#include <string>

#include "obs/config.hpp"
#include "util/units.hpp"

namespace cyclops::baseline {

const std::vector<McsEntry>& mcs_table() {
  // 802.11ad single-carrier MCS 1-12 (SNR thresholds are typical
  // evaluation values; rates from the standard).
  static const std::vector<McsEntry> table = {
      {1.0, 0.385},  {2.5, 0.770},  {4.0, 0.9625}, {5.0, 1.155},
      {6.0, 1.5400}, {7.5, 1.925},  {9.0, 2.3100}, {10.5, 2.695},
      {12.0, 3.080}, {13.5, 3.850}, {15.0, 4.620}, {17.5, 6.7565},
  };
  return table;
}

double MmWaveLink::noise_floor_dbm() const {
  return -174.0 + 10.0 * std::log10(config_.bandwidth_ghz * 1e9) +
         config_.noise_figure_db;
}

double MmWaveLink::snr_db(double range, bool blocked) const {
  const double wavelength = 3e8 / (config_.carrier_ghz * 1e9);
  const double fspl =
      20.0 * std::log10(4.0 * util::kPi * std::max(range, 0.01) / wavelength);
  double rx = config_.tx_power_dbm + config_.tx_antenna_gain_dbi +
              config_.rx_antenna_gain_dbi - fspl -
              config_.implementation_loss_db;
  if (blocked) rx -= config_.blockage_loss_db;
  return rx - noise_floor_dbm();
}

int mcs_index_for(double snr_db) {
  int index = 0;
  const auto& table = mcs_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (snr_db >= table[i].min_snr_db) index = static_cast<int>(i) + 1;
  }
  return index;
}

double MmWaveLink::phy_rate_gbps(double snr) const {
  double rate = 0.0;
  for (const auto& entry : mcs_table()) {
    if (snr >= entry.min_snr_db) rate = entry.phy_rate_gbps;
  }
  return rate;
}

bool BeamTrainingState::step(util::SimTimeUs now, double orientation_rad) {
  if (now < retrain_done_) return true;
  if (std::abs(orientation_rad - trained_at_rad_) > beamwidth_rad_ * 0.5) {
    trained_at_rad_ = orientation_rad;
    retrain_done_ = now + retrain_us_;
    ++retrains_;
    return true;
  }
  return false;
}

MmWaveSession::MmWaveSession(const MmWaveConfig& config,
                             obs::Registry* registry)
    : link_(config), training_(config) {
  if constexpr (obs::kEnabled) {
    if (registry != nullptr) {
      registry_ = registry;
      m_retrains_ = &registry->counter("mmwave_retrains_total");
      m_retrain_slots_ = &registry->counter("mmwave_retrain_slots_total");
      m_blocked_slots_ = &registry->counter("mmwave_blocked_slots_total");
      m_blockage_us_ = &registry->histogram("mmwave_blockage_us",
                                            obs::HistogramSpec::duration_us());
    }
  }
}

void MmWaveSession::record_mcs(util::SimTimeUs now, int mcs) {
  if (mcs == cur_mcs_) return;
  if constexpr (obs::kEnabled) {
    if (registry_ != nullptr && cur_mcs_ >= 0 && now > mcs_since_) {
      // Dwell histograms are keyed per rung; transitions are rare, so the
      // get-or-create lookup stays off the hot path.
      registry_
          ->histogram("mmwave_mcs_dwell_us", obs::HistogramSpec::duration_us(),
                      {{"mcs", std::to_string(cur_mcs_)}})
          .record(static_cast<double>(now - mcs_since_));
    }
  }
  cur_mcs_ = mcs;
  mcs_since_ = now;
}

bool MmWaveSession::observe(util::SimTimeUs now,
                            double cumulative_rotation_rad, double snr_db,
                            bool blocked) {
  const int before = training_.retrains();
  const bool retraining = training_.step(now, cumulative_rotation_rad);
  record_mcs(now, retraining ? 0 : mcs_index_for(snr_db));
  if constexpr (obs::kEnabled) {
    if (registry_ != nullptr) {
      if (training_.retrains() > before) m_retrains_->inc();
      if (retraining) m_retrain_slots_->inc();
      if (blocked) m_blocked_slots_->inc();
      const int state = blocked ? 1 : 0;
      if (blocked_state_ != 1 && blocked) blocked_since_ = now;
      if (blocked_state_ == 1 && !blocked) {
        m_blockage_us_->record(static_cast<double>(now - blocked_since_));
      }
      blocked_state_ = state;
    }
  }
  return retraining;
}

void MmWaveSession::finish(util::SimTimeUs now) {
  record_mcs(now, -1);
  if constexpr (obs::kEnabled) {
    if (registry_ != nullptr && blocked_state_ == 1) {
      m_blockage_us_->record(static_cast<double>(now - blocked_since_));
      blocked_state_ = 0;
    }
  }
}

}  // namespace cyclops::baseline

#include "baseline/mmwave.hpp"

#include <cmath>

#include "util/units.hpp"

namespace cyclops::baseline {

const std::vector<McsEntry>& mcs_table() {
  // 802.11ad single-carrier MCS 1-12 (SNR thresholds are typical
  // evaluation values; rates from the standard).
  static const std::vector<McsEntry> table = {
      {1.0, 0.385},  {2.5, 0.770},  {4.0, 0.9625}, {5.0, 1.155},
      {6.0, 1.5400}, {7.5, 1.925},  {9.0, 2.3100}, {10.5, 2.695},
      {12.0, 3.080}, {13.5, 3.850}, {15.0, 4.620}, {17.5, 6.7565},
  };
  return table;
}

double MmWaveLink::noise_floor_dbm() const {
  return -174.0 + 10.0 * std::log10(config_.bandwidth_ghz * 1e9) +
         config_.noise_figure_db;
}

double MmWaveLink::snr_db(double range, bool blocked) const {
  const double wavelength = 3e8 / (config_.carrier_ghz * 1e9);
  const double fspl =
      20.0 * std::log10(4.0 * util::kPi * std::max(range, 0.01) / wavelength);
  double rx = config_.tx_power_dbm + config_.tx_antenna_gain_dbi +
              config_.rx_antenna_gain_dbi - fspl -
              config_.implementation_loss_db;
  if (blocked) rx -= config_.blockage_loss_db;
  return rx - noise_floor_dbm();
}

double MmWaveLink::phy_rate_gbps(double snr) const {
  double rate = 0.0;
  for (const auto& entry : mcs_table()) {
    if (snr >= entry.min_snr_db) rate = entry.phy_rate_gbps;
  }
  return rate;
}

bool BeamTrainingState::step(util::SimTimeUs now, double orientation_rad) {
  if (now < retrain_done_) return true;
  if (std::abs(orientation_rad - trained_at_rad_) > beamwidth_rad_ * 0.5) {
    trained_at_rad_ = orientation_rad;
    retrain_done_ = now + retrain_us_;
    ++retrains_;
    return true;
  }
  return false;
}

}  // namespace cyclops::baseline

// Rig motion profiles reproducing the §5.3 evaluation methodology:
// the linear rail, the rotation stage, and free hand-held movement.
#pragma once

#include <memory>
#include <vector>

#include "geom/pose.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::motion {

/// World pose of the RX rig as a function of simulation time.
class MotionProfile {
 public:
  virtual ~MotionProfile() = default;
  virtual geom::Pose pose_at(util::SimTimeUs t) const = 0;
  virtual double duration_s() const = 0;
};

/// Instantaneous linear (m/s) and angular (rad/s) speeds measured by
/// central differencing, mirroring how the paper derives speeds from
/// VRH-T reports.
struct Speeds {
  double linear_mps = 0.0;
  double angular_rps = 0.0;
};
Speeds measure_speeds(const MotionProfile& profile, util::SimTimeUs t,
                      util::SimTimeUs dt = 5000);

/// Rig clamped in place.
class StillMotion final : public MotionProfile {
 public:
  explicit StillMotion(geom::Pose pose, double duration_s = 60.0)
      : pose_(std::move(pose)), duration_s_(duration_s) {}
  geom::Pose pose_at(util::SimTimeUs) const override { return pose_; }
  double duration_s() const override { return duration_s_; }

 private:
  geom::Pose pose_;
  double duration_s_;
};

/// Linear rail: full strokes between +/- half_stroke along `axis` (rig
/// frame of `base`), one stroke per speed in `stroke_speeds`, with a
/// momentary rest at each end — §5.3's "single smooth stroke ... repeated
/// with gradually increasing stroke speeds".
class LinearStrokeMotion final : public MotionProfile {
 public:
  LinearStrokeMotion(geom::Pose base, geom::Vec3 axis, double half_stroke,
                     std::vector<double> stroke_speeds,
                     double rest_s = 0.25);
  geom::Pose pose_at(util::SimTimeUs t) const override;
  double duration_s() const override { return total_s_; }

 private:
  struct Segment {
    double start_s, end_s;
    double from_offset, to_offset;  ///< Along the axis (m).
  };
  geom::Pose base_;
  geom::Vec3 axis_;
  std::vector<Segment> segments_;
  double total_s_ = 0.0;
};

/// Rotation stage: angular strokes about `axis` through the rig origin,
/// +/- half_angle, one stroke per speed (rad/s).
class AngularStrokeMotion final : public MotionProfile {
 public:
  AngularStrokeMotion(geom::Pose base, geom::Vec3 axis, double half_angle,
                      std::vector<double> stroke_speeds, double rest_s = 0.25);
  geom::Pose pose_at(util::SimTimeUs t) const override;
  double duration_s() const override { return total_s_; }

 private:
  struct Segment {
    double start_s, end_s;
    double from_angle, to_angle;
  };
  geom::Pose base_;
  geom::Vec3 axis_;
  std::vector<Segment> segments_;
  double total_s_ = 0.0;
};

/// Hand-held rig: smooth random linear + angular motion (Ornstein-
/// Uhlenbeck velocities), with hard speed caps; position is springed back
/// toward the base pose so the rig stays in the coverage cone.
class MixedRandomMotion final : public MotionProfile {
 public:
  struct Config {
    double duration_s = 30.0;
    double sample_period_s = 0.005;
    double linear_speed_sigma = 0.06;    ///< Per-axis OU stddev (m/s).
    double angular_speed_sigma = 0.10;   ///< Per-axis OU stddev (rad/s).
    double max_linear_speed = 0.50;      ///< Hard cap (m/s).
    double max_angular_speed = 0.60;     ///< Hard cap (rad/s).
    double time_constant_s = 0.4;        ///< OU relaxation.
    double position_spring = 0.8;        ///< Pull-back toward base (1/s).
    double max_excursion = 0.25;         ///< Soft position bound (m).
    /// Pull-back of orientation toward the base (a hand-held tester keeps
    /// the assembly facing the TX; heads don't spin away mid-test).
    double orientation_spring = 1.2;     ///< (1/s)
    double max_rotation = 0.30;          ///< Soft orientation bound (rad).
  };
  MixedRandomMotion(geom::Pose base, Config config, util::Rng rng);
  geom::Pose pose_at(util::SimTimeUs t) const override;
  double duration_s() const override { return config_.duration_s; }

 private:
  Config config_;
  std::vector<geom::Pose> samples_;  ///< Precomputed at sample_period.
};

/// Convenience: the paper's increasing speed schedule (start, start+step,
/// ... until max), e.g. 5 cm/s up to 60 cm/s.
std::vector<double> increasing_speeds(double start, double step, double max);

}  // namespace cyclops::motion

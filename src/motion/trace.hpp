// Head-movement traces: timestamped poses at a fixed sampling period,
// matching the format of the public 360°-video viewing dataset the paper
// uses in §5.4 (head location + orientation every 10 ms).
#pragma once

#include <filesystem>
#include <vector>

#include "geom/pose.hpp"
#include "motion/profile.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::motion {

struct TimedPose {
  util::SimTimeUs time = 0;
  geom::Pose pose;
};

struct Trace {
  std::vector<TimedPose> samples;

  double duration_s() const {
    return samples.empty() ? 0.0 : util::us_to_s(samples.back().time);
  }

  /// Pose at t by lerp/slerp between bracketing samples (clamped).
  geom::Pose pose_at(util::SimTimeUs t) const;

  /// CSV round-trip: columns t_ms, x, y, z, qw, qx, qy, qz.
  void save_csv(const std::filesystem::path& path) const;
  static Trace load_csv(const std::filesystem::path& path);
};

/// Adapts a Trace to the MotionProfile interface.
class TraceMotion final : public MotionProfile {
 public:
  explicit TraceMotion(Trace trace) : trace_(std::move(trace)) {}
  geom::Pose pose_at(util::SimTimeUs t) const override {
    return trace_.pose_at(t);
  }
  double duration_s() const override { return trace_.duration_s(); }
  const Trace& trace() const noexcept { return trace_; }

 private:
  Trace trace_;
};

/// Per-sample speeds along a trace (length = samples - 1).
struct TraceSpeeds {
  std::vector<double> linear_mps;
  std::vector<double> angular_rps;
};
TraceSpeeds compute_speeds(const Trace& trace);

}  // namespace cyclops::motion

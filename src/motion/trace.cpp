#include "motion/trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/csv.hpp"

namespace cyclops::motion {

geom::Pose Trace::pose_at(util::SimTimeUs t) const {
  if (samples.empty()) return {};
  if (t <= samples.front().time) return samples.front().pose;
  if (t >= samples.back().time) return samples.back().pose;

  const auto it = std::lower_bound(
      samples.begin(), samples.end(), t,
      [](const TimedPose& s, util::SimTimeUs value) { return s.time < value; });
  const TimedPose& b = *it;
  const TimedPose& a = *(it - 1);
  const double span = static_cast<double>(b.time - a.time);
  const double frac =
      span > 0.0 ? static_cast<double>(t - a.time) / span : 1.0;

  return geom::Pose{
      geom::slerp(a.pose.rotation_quat(), b.pose.rotation_quat(), frac)
          .to_matrix(),
      a.pose.translation() +
          (b.pose.translation() - a.pose.translation()) * frac};
}

void Trace::save_csv(const std::filesystem::path& path) const {
  std::vector<std::vector<double>> rows;
  rows.reserve(samples.size());
  for (const auto& s : samples) {
    const geom::Quat q = s.pose.rotation_quat();
    const geom::Vec3& p = s.pose.translation();
    rows.push_back({util::us_to_ms(s.time), p.x, p.y, p.z, q.w, q.x, q.y, q.z});
  }
  util::write_csv(path, {"t_ms", "x", "y", "z", "qw", "qx", "qy", "qz"}, rows);
}

Trace Trace::load_csv(const std::filesystem::path& path) {
  const util::CsvTable table = util::read_csv(path);
  Trace trace;
  trace.samples.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    if (row.size() != 8) {
      throw std::runtime_error("bad trace row in " + path.string());
    }
    const geom::Quat q = geom::Quat{row[4], row[5], row[6], row[7]}.normalized();
    trace.samples.push_back({util::us_from_ms(row[0]),
                             geom::Pose::from_quat(q, {row[1], row[2], row[3]})});
  }
  return trace;
}

TraceSpeeds compute_speeds(const Trace& trace) {
  TraceSpeeds speeds;
  if (trace.samples.size() < 2) return speeds;
  speeds.linear_mps.reserve(trace.samples.size() - 1);
  speeds.angular_rps.reserve(trace.samples.size() - 1);
  for (std::size_t i = 1; i < trace.samples.size(); ++i) {
    const auto& a = trace.samples[i - 1];
    const auto& b = trace.samples[i];
    const double dt = util::us_to_s(b.time - a.time);
    if (dt <= 0.0) continue;
    speeds.linear_mps.push_back(geom::translation_distance(a.pose, b.pose) /
                                dt);
    speeds.angular_rps.push_back(geom::rotation_distance(a.pose, b.pose) / dt);
  }
  return speeds;
}

}  // namespace cyclops::motion

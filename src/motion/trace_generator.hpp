// Synthetic head-movement traces for 360° video viewing.
//
// Stand-in for the public dataset of [47] (50 viewers x 10 one-minute
// YouTube 360° videos = 500 traces, 10 ms sampling) used in §5.4.  The
// generator produces yaw-dominant exploration with saccade bursts, small
// pitch/roll, and gentle positional sway; parameters are calibrated so the
// per-sample speed CDFs match the paper's Fig 3 characterization (maxima
// around 14 cm/s linear and 19 deg/s angular during normal use).
#pragma once

#include <vector>

#include "motion/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cyclops::motion {

struct TraceGeneratorConfig {
  double duration_s = 60.0;
  double sample_period_ms = 10.0;
  // Ornstein-Uhlenbeck rate processes (stationary stddevs).
  double yaw_rate_sigma = 0.052;    ///< rad/s (~3 deg/s).
  double pitch_rate_sigma = 0.024;  ///< rad/s.
  double roll_rate_sigma = 0.009;   ///< rad/s.
  double rate_time_constant_s = 0.6;
  /// Saccades: Poisson bursts of extra yaw rate.
  double saccade_rate_hz = 0.25;
  double saccade_peak_rps = 0.17;   ///< ~10 deg/s extra.
  double saccade_duration_s = 0.4;
  // Positional sway.
  double sway_speed_sigma = 0.017;  ///< Per-axis m/s.
  double sway_time_constant_s = 0.8;
  double sway_spring = 0.6;
  /// Posture-shift bursts (leaning / re-seating): brief linear-speed
  /// excursions toward the Fig-3 maximum that stress the link's lateral
  /// drift budget the way real viewers do.
  double shift_rate_hz = 0.18;
  double shift_peak_mps = 0.14;
  double shift_duration_s = 0.8;
  // Hard caps (Fig 3: "at most 19 deg/s and 14 cm/s").
  double max_angular_rps = 0.33;    ///< 19 deg/s.
  double max_linear_mps = 0.14;
  /// Soft pitch limit — viewers rarely look straight up/down.
  double max_pitch_rad = 0.6;
};

/// One synthetic viewing trace around `base` (the seated/standing pose).
Trace generate_viewing_trace(const geom::Pose& base,
                             const TraceGeneratorConfig& config,
                             util::Rng& rng);

/// The full §5.4 dataset: `count` traces with per-trace "viewer style"
/// variation (activity level scales the sigmas).  Trace i is generated
/// from a child RNG keyed off i (Rng::split(i)), so the dataset is
/// bit-identical at any thread count; `rng` advances by exactly one draw
/// per call regardless of `count`.
std::vector<Trace> generate_dataset(
    const geom::Pose& base, int count, const TraceGeneratorConfig& config,
    util::Rng& rng, util::ThreadPool& pool = util::ThreadPool::global());

/// Room-scale (walking) VR: the user strolls between waypoints inside a
/// horizontal box around the base pose, head yawed roughly along the walk
/// direction with viewing jitter on top.  Much faster linear motion than
/// seated 360° viewing — the regime that motivates prediction + multi-TX
/// (bench/roomscale_study).
struct WalkingConfig {
  double duration_s = 60.0;
  double sample_period_ms = 10.0;
  /// Walkable half-extent around the base position (m, x and z).
  double area_half_extent = 0.45;
  double walk_speed_min = 0.20;  ///< m/s
  double walk_speed_max = 0.55;
  double pause_s_min = 0.5;      ///< Dwell at each waypoint.
  double pause_s_max = 2.0;
  /// Head-orientation jitter on top of the walk heading.
  double gaze_yaw_sigma = 0.25;   ///< rad
  double gaze_pitch_sigma = 0.1;  ///< rad
  /// When true the head yaws along the walk direction (free roaming —
  /// needs surround TX coverage); when false the user faces forward and
  /// side-steps (standing room-scale play, e.g. rhythm games).
  bool face_walk_direction = false;
};

Trace generate_walking_trace(const geom::Pose& base,
                             const WalkingConfig& config, util::Rng& rng);

}  // namespace cyclops::motion

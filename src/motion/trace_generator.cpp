#include "motion/trace_generator.hpp"

#include <algorithm>
#include <cmath>

#include "geom/mat3.hpp"
#include "util/units.hpp"

namespace cyclops::motion {
namespace {

/// One-dimensional Ornstein-Uhlenbeck process stepped at dt.
class OuProcess {
 public:
  OuProcess(double sigma, double time_constant_s, double dt)
      : relax_(std::exp(-dt / time_constant_s)),
        noise_(sigma * std::sqrt(1.0 - relax_ * relax_)) {}

  double step(util::Rng& rng) {
    value_ = value_ * relax_ + rng.normal(0.0, noise_);
    return value_;
  }
  double value() const noexcept { return value_; }
  void scale(double k) noexcept { value_ *= k; }

 private:
  double relax_;
  double noise_;
  double value_ = 0.0;
};

}  // namespace

Trace generate_viewing_trace(const geom::Pose& base,
                             const TraceGeneratorConfig& config,
                             util::Rng& rng) {
  const double dt = config.sample_period_ms * 1e-3;
  const auto n = static_cast<std::size_t>(config.duration_s / dt) + 1;

  OuProcess yaw_rate(config.yaw_rate_sigma, config.rate_time_constant_s, dt);
  OuProcess pitch_rate(config.pitch_rate_sigma, config.rate_time_constant_s,
                       dt);
  OuProcess roll_rate(config.roll_rate_sigma, config.rate_time_constant_s, dt);
  OuProcess sway[3] = {
      {config.sway_speed_sigma, config.sway_time_constant_s, dt},
      {config.sway_speed_sigma, config.sway_time_constant_s, dt},
      {config.sway_speed_sigma, config.sway_time_constant_s, dt}};

  double yaw = 0.0, pitch = 0.0, roll = 0.0;
  geom::Vec3 offset{};
  double saccade_left_s = 0.0;
  double saccade_rate = 0.0;
  double shift_left_s = 0.0;
  geom::Vec3 shift_velocity{};

  Trace trace;
  trace.samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = static_cast<util::SimTimeUs>(
        static_cast<double>(i) * config.sample_period_ms * 1e3);

    // Head orientation relative to the base: yaw about base-frame y (up),
    // pitch about x, roll about z.
    const geom::Mat3 head_rot =
        geom::Mat3::rotation(base.rotation() * geom::Vec3{0, 1, 0}, yaw) *
        geom::Mat3::rotation(base.rotation() * geom::Vec3{1, 0, 0}, pitch) *
        geom::Mat3::rotation(base.rotation() * geom::Vec3{0, 0, 1}, roll);
    trace.samples.push_back(
        {t, geom::Pose{head_rot * base.rotation(),
                       base.translation() + offset}});

    // Saccade scheduling.
    if (saccade_left_s <= 0.0 &&
        rng.uniform() < config.saccade_rate_hz * dt) {
      saccade_left_s = config.saccade_duration_s;
      saccade_rate = rng.uniform(-1.0, 1.0) * config.saccade_peak_rps;
    }
    double extra_yaw_rate = 0.0;
    if (saccade_left_s > 0.0) {
      // Smooth half-sine burst profile.
      const double phase = 1.0 - saccade_left_s / config.saccade_duration_s;
      extra_yaw_rate = saccade_rate * std::sin(phase * util::kPi);
      saccade_left_s -= dt;
    }

    double wy = yaw_rate.step(rng) + extra_yaw_rate;
    double wp = pitch_rate.step(rng);
    double wr = roll_rate.step(rng);

    // Steer pitch back toward level when approaching the comfort limit.
    if (std::abs(pitch) > config.max_pitch_rad * 0.7) {
      wp -= 0.8 * pitch * dt / config.rate_time_constant_s;
    }

    // Hard angular-speed cap.
    const double w_norm = std::sqrt(wy * wy + wp * wp + wr * wr);
    if (w_norm > config.max_angular_rps) {
      const double k = config.max_angular_rps / w_norm;
      wy *= k;
      wp *= k;
      wr *= k;
    }
    yaw += wy * dt;
    pitch = std::clamp(pitch + wp * dt, -config.max_pitch_rad,
                       config.max_pitch_rad);
    roll += wr * dt;
    roll *= 0.999;  // roll relaxes toward level

    // Posture-shift scheduling (lean / re-seat): a half-sine burst of
    // linear velocity in a random mostly-horizontal direction.
    if (shift_left_s <= 0.0 && rng.uniform() < config.shift_rate_hz * dt) {
      shift_left_s = config.shift_duration_s;
      const geom::Vec3 dir =
          geom::Vec3{rng.normal(), 0.3 * rng.normal(), rng.normal()}
              .normalized();
      shift_velocity = dir * (config.shift_peak_mps * rng.uniform(0.6, 1.0));
    }
    geom::Vec3 shift{};
    if (shift_left_s > 0.0) {
      const double phase = 1.0 - shift_left_s / config.shift_duration_s;
      shift = shift_velocity * std::sin(phase * util::kPi);
      shift_left_s -= dt;
    }

    // Positional sway with spring-back and a hard linear-speed cap.
    geom::Vec3 v{sway[0].step(rng), sway[1].step(rng), sway[2].step(rng)};
    v += shift;
    v -= offset * (config.sway_spring * dt);
    const double v_norm = v.norm();
    if (v_norm > config.max_linear_mps) v *= config.max_linear_mps / v_norm;
    offset += v * dt;
  }
  return trace;
}

Trace generate_walking_trace(const geom::Pose& base,
                             const WalkingConfig& config, util::Rng& rng) {
  const double dt = config.sample_period_ms * 1e-3;
  const auto n = static_cast<std::size_t>(config.duration_s / dt) + 1;

  Trace trace;
  trace.samples.reserve(n);

  geom::Vec3 position = base.translation();
  geom::Vec3 waypoint = position;
  double pause_left = 0.5;
  double yaw = 0.0, yaw_target = 0.0;
  // Gaze jitter: smooth *rates* (OU) integrated into angles with a spring
  // back to neutral — an OU process used directly as an angle would have
  // a white-noise derivative (unphysical head speeds).
  OuProcess gaze_yaw_rate(config.gaze_yaw_sigma * 0.8, 0.5, dt);
  OuProcess gaze_pitch_rate(config.gaze_pitch_sigma * 0.8, 0.5, dt);
  double gaze_yaw = 0.0, gaze_pitch = 0.0;
  double speed = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    const auto t = static_cast<util::SimTimeUs>(
        static_cast<double>(i) * config.sample_period_ms * 1e3);

    const geom::Mat3 head_rot =
        geom::Mat3::rotation(base.rotation() * geom::Vec3{0, 1, 0},
                             yaw + gaze_yaw) *
        geom::Mat3::rotation(base.rotation() * geom::Vec3{1, 0, 0},
                             gaze_pitch);
    trace.samples.push_back(
        {t, geom::Pose{head_rot * base.rotation(), position}});

    gaze_yaw += (gaze_yaw_rate.step(rng) - 0.8 * gaze_yaw) * dt;
    gaze_pitch += (gaze_pitch_rate.step(rng) - 0.8 * gaze_pitch) * dt;

    const geom::Vec3 to_waypoint = waypoint - position;
    if (to_waypoint.norm() < 0.03) {
      if (pause_left > 0.0) {
        pause_left -= dt;
      } else {
        // Pick the next waypoint in the walkable box (base-local x/z).
        const geom::Vec3 local{
            rng.uniform(-config.area_half_extent, config.area_half_extent),
            0.0,
            rng.uniform(-config.area_half_extent, config.area_half_extent)};
        waypoint = base.translation() + base.rotation() * local;
        speed = rng.uniform(config.walk_speed_min, config.walk_speed_max);
        pause_left = rng.uniform(config.pause_s_min, config.pause_s_max);
        // Face roughly along the walk (free-roaming mode only).
        const geom::Vec3 heading = waypoint - position;
        if (config.face_walk_direction && heading.norm() > 0.05) {
          // Yaw relative to the base forward (+z in base frame).
          const geom::Vec3 local_heading =
              base.rotation().transposed() * heading.normalized();
          yaw_target = std::atan2(local_heading.x, local_heading.z);
        }
      }
    } else {
      position += to_waypoint.normalized() * std::min(speed * dt,
                                                      to_waypoint.norm());
    }
    // Turn the head toward the walk heading at a natural rate (~57 deg/s
    // peak, proportional slow-in near the target).
    const double yaw_error = yaw_target - yaw;
    const double turn_rate = std::clamp(2.5 * yaw_error, -1.0, 1.0);
    yaw += turn_rate * dt;
  }
  return trace;
}

std::vector<Trace> generate_dataset(const geom::Pose& base, int count,
                                    const TraceGeneratorConfig& config,
                                    util::Rng& rng, util::ThreadPool& pool) {
  // Advance the caller's stream once, then derive child i as a pure
  // function of (dataset stream, i): trace i is the same no matter how the
  // items are partitioned across threads.
  const util::Rng dataset_rng = rng.split();
  return util::parallel_map<Trace>(
      static_cast<std::size_t>(std::max(count, 0)),
      [&](std::size_t i) {
        util::Rng trace_rng = dataset_rng.split(i);
        // Viewer-style variation: calm watchers to active explorers.
        TraceGeneratorConfig c = config;
        const double activity = trace_rng.uniform(0.4, 1.5);
        c.yaw_rate_sigma *= activity;
        c.pitch_rate_sigma *= activity;
        c.roll_rate_sigma *= activity;
        c.sway_speed_sigma *= activity;
        c.saccade_rate_hz *= activity;
        c.shift_rate_hz *= activity;
        return generate_viewing_trace(base, c, trace_rng);
      },
      pool);
}

}  // namespace cyclops::motion

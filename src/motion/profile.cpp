#include "motion/profile.hpp"

#include <algorithm>
#include <cmath>

#include "geom/mat3.hpp"

namespace cyclops::motion {

Speeds measure_speeds(const MotionProfile& profile, util::SimTimeUs t,
                      util::SimTimeUs dt) {
  const geom::Pose a = profile.pose_at(t > dt ? t - dt : 0);
  const geom::Pose b = profile.pose_at(t + dt);
  const double span_s = util::us_to_s(t > dt ? 2 * dt : t + dt);
  if (span_s <= 0.0) return {};
  return {geom::translation_distance(a, b) / span_s,
          geom::rotation_distance(a, b) / span_s};
}

std::vector<double> increasing_speeds(double start, double step, double max) {
  std::vector<double> speeds;
  for (double s = start; s <= max + 1e-9; s += step) speeds.push_back(s);
  return speeds;
}

// --- LinearStrokeMotion ---

LinearStrokeMotion::LinearStrokeMotion(geom::Pose base, geom::Vec3 axis,
                                       double half_stroke,
                                       std::vector<double> stroke_speeds,
                                       double rest_s)
    : base_(std::move(base)), axis_(axis.normalized()) {
  double t = 0.0;
  double position = -half_stroke;
  for (double speed : stroke_speeds) {
    const double target = position < 0.0 ? half_stroke : -half_stroke;
    const double duration =
        std::abs(target - position) / std::max(speed, 1e-6);
    segments_.push_back({t, t + duration, position, target});
    t += duration;
    position = target;
    segments_.push_back({t, t + rest_s, position, position});
    t += rest_s;
  }
  total_s_ = t;
}

geom::Pose LinearStrokeMotion::pose_at(util::SimTimeUs t) const {
  const double t_s = util::us_to_s(t);
  double offset = segments_.empty() ? 0.0 : segments_.back().to_offset;
  for (const auto& seg : segments_) {
    if (t_s <= seg.end_s) {
      const double span = seg.end_s - seg.start_s;
      const double frac =
          span > 0.0 ? std::clamp((t_s - seg.start_s) / span, 0.0, 1.0) : 1.0;
      offset = seg.from_offset + frac * (seg.to_offset - seg.from_offset);
      break;
    }
  }
  return {base_.rotation(), base_.translation() + axis_ * offset};
}

// --- AngularStrokeMotion ---

AngularStrokeMotion::AngularStrokeMotion(geom::Pose base, geom::Vec3 axis,
                                         double half_angle,
                                         std::vector<double> stroke_speeds,
                                         double rest_s)
    : base_(std::move(base)), axis_(axis.normalized()) {
  double t = 0.0;
  double angle = -half_angle;
  for (double speed : stroke_speeds) {
    const double target = angle < 0.0 ? half_angle : -half_angle;
    const double duration = std::abs(target - angle) / std::max(speed, 1e-6);
    segments_.push_back({t, t + duration, angle, target});
    t += duration;
    angle = target;
    segments_.push_back({t, t + rest_s, angle, angle});
    t += rest_s;
  }
  total_s_ = t;
}

geom::Pose AngularStrokeMotion::pose_at(util::SimTimeUs t) const {
  const double t_s = util::us_to_s(t);
  double angle = segments_.empty() ? 0.0 : segments_.back().to_angle;
  for (const auto& seg : segments_) {
    if (t_s <= seg.end_s) {
      const double span = seg.end_s - seg.start_s;
      const double frac =
          span > 0.0 ? std::clamp((t_s - seg.start_s) / span, 0.0, 1.0) : 1.0;
      angle = seg.from_angle + frac * (seg.to_angle - seg.from_angle);
      break;
    }
  }
  // Rotate about the axis through the rig origin (the rotation stage sits
  // under the breadboard).
  const geom::Mat3 rot = geom::Mat3::rotation(base_.rotation() * axis_, angle);
  return {rot * base_.rotation(), base_.translation()};
}

// --- MixedRandomMotion ---

MixedRandomMotion::MixedRandomMotion(geom::Pose base, Config config,
                                     util::Rng rng)
    : config_(config) {
  const double dt = config_.sample_period_s;
  const std::size_t n =
      static_cast<std::size_t>(config_.duration_s / dt) + 2;
  samples_.reserve(n);

  geom::Vec3 position = base.translation();
  geom::Mat3 rotation = base.rotation();
  geom::Vec3 lin_vel{}, ang_vel{};
  const double relax = std::exp(-dt / config_.time_constant_s);
  // OU stationary-variance-preserving noise scale.
  const double lin_noise =
      config_.linear_speed_sigma * std::sqrt(1.0 - relax * relax);
  const double ang_noise =
      config_.angular_speed_sigma * std::sqrt(1.0 - relax * relax);

  for (std::size_t i = 0; i < n; ++i) {
    samples_.push_back({rotation, position});

    lin_vel = lin_vel * relax +
              geom::Vec3{rng.normal(0.0, lin_noise), rng.normal(0.0, lin_noise),
                         rng.normal(0.0, lin_noise)};
    ang_vel = ang_vel * relax +
              geom::Vec3{rng.normal(0.0, ang_noise), rng.normal(0.0, ang_noise),
                         rng.normal(0.0, ang_noise)};

    // Spring back toward the base position to stay within the coverage cone.
    const geom::Vec3 excursion = position - base.translation();
    lin_vel -= excursion * (config_.position_spring * dt);
    if (excursion.norm() > config_.max_excursion) {
      lin_vel -= excursion.normalized() * 0.2;
    }

    // Spring the orientation back toward the base as well.
    const geom::Vec3 rotation_offset =
        geom::rotation_vector(rotation * base.rotation().transposed());
    ang_vel -= rotation_offset * (config_.orientation_spring * dt);
    if (rotation_offset.norm() > config_.max_rotation) {
      ang_vel -= rotation_offset.normalized() * 0.15;
    }

    // Hard speed caps (the §5.3 methodology bounds speeds explicitly).
    const double lin_speed = lin_vel.norm();
    if (lin_speed > config_.max_linear_speed) {
      lin_vel *= config_.max_linear_speed / lin_speed;
    }
    const double ang_speed = ang_vel.norm();
    if (ang_speed > config_.max_angular_speed) {
      ang_vel *= config_.max_angular_speed / ang_speed;
    }

    position += lin_vel * dt;
    if (ang_speed > 1e-9) {
      rotation = geom::Mat3::rotation(ang_vel, ang_vel.norm() * dt) * rotation;
    }
  }
}

geom::Pose MixedRandomMotion::pose_at(util::SimTimeUs t) const {
  const double t_s = std::clamp(util::us_to_s(t), 0.0, config_.duration_s);
  const double idx_f = t_s / config_.sample_period_s;
  const std::size_t idx =
      std::min(static_cast<std::size_t>(idx_f), samples_.size() - 2);
  const double frac = std::clamp(idx_f - static_cast<double>(idx), 0.0, 1.0);

  const geom::Pose& a = samples_[idx];
  const geom::Pose& b = samples_[idx + 1];
  const geom::Quat qa = a.rotation_quat();
  const geom::Quat qb = b.rotation_quat();
  return geom::Pose{geom::slerp(qa, qb, frac).to_matrix(),
                    a.translation() +
                        (b.translation() - a.translation()) * frac};
}

}  // namespace cyclops::motion

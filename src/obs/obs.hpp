// Umbrella header for the telemetry subsystem (DESIGN.md §10).
#pragma once

#include "obs/config.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cyclops::obs {

HistogramSpec HistogramSpec::log_scale(double lo, double hi, int per_decade) {
  assert(lo > 0.0 && hi > lo && per_decade > 0);
  HistogramSpec spec;
  // Edges are computed from the integer exponent index, not by repeated
  // multiplication, so the layout is exactly reproducible.
  for (int i = 0;; ++i) {
    const double edge = lo * std::pow(10.0, static_cast<double>(i) /
                                                static_cast<double>(per_decade));
    spec.bounds.push_back(edge);
    if (edge >= hi) break;
  }
  return spec;
}

HistogramSpec HistogramSpec::linear(double lo, double width, int n) {
  assert(width > 0.0 && n > 0);
  HistogramSpec spec;
  spec.bounds.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) {
    spec.bounds.push_back(lo + static_cast<double>(i) * width);
  }
  return spec;
}

Histogram::Histogram(HistogramSpec spec)
    : spec_(std::move(spec)), buckets_(spec_.bounds.size() + 1) {
  assert(!spec_.bounds.empty());
  assert(std::is_sorted(spec_.bounds.begin(), spec_.bounds.end()));
}

std::size_t Histogram::bucket_index(double v) const noexcept {
  // First edge >= v; values above every edge land in the overflow bucket.
  const auto it =
      std::lower_bound(spec_.bounds.begin(), spec_.bounds.end(), v);
  return static_cast<std::size_t>(it - spec_.bounds.begin());
}

void Histogram::record(double v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  update_min(v);
  update_max(v);
}

void Histogram::update_min(double v) noexcept {
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::update_max(double v) noexcept {
  double cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::approx_sum() const noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n = bucket(i);
    if (n == 0) continue;
    const double edge =
        i < spec_.bounds.size() ? spec_.bounds[i] : spec_.bounds.back();
    sum += static_cast<double>(n) * edge;
  }
  return sum;
}

double Histogram::approx_mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : approx_sum() / static_cast<double>(n);
}

double Histogram::approx_quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile among n samples, 1-based, nearest-rank method.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += bucket(i);
    if (cumulative >= rank) {
      return i < spec_.bounds.size() ? spec_.bounds[i] : spec_.bounds.back();
    }
  }
  return spec_.bounds.back();
}

void Histogram::merge_from(const Histogram& other) noexcept {
  assert(spec_ == other.spec());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n = other.bucket(i);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  if (other.count() != 0) {
    update_min(other.min());
    update_max(other.max());
  }
}

void Histogram::add_bucket(std::size_t i, std::uint64_t n) noexcept {
  assert(i < buckets_.size());
  buckets_[i].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
}

void Histogram::set_extrema(double min_v, double max_v) noexcept {
  update_min(min_v);
  update_max(max_v);
}

}  // namespace cyclops::obs

#include "obs/span.hpp"

#include "util/thread_pool.hpp"

namespace cyclops::obs {

WallSpan Tracer::wall(const std::string& name, Labels labels) {
  if (registry_ == nullptr) return WallSpan(nullptr);
  return WallSpan(&registry_->histogram(name, HistogramSpec::duration_us(),
                                        std::move(labels)));
}

SimSpan Tracer::sim(const std::string& name, util::SimTimeUs start,
                    Labels labels) {
  if (registry_ == nullptr) return SimSpan();
  return SimSpan(&registry_->histogram(name, HistogramSpec::duration_us(),
                                       std::move(labels)),
                 start);
}

void record_thread_pool(Registry& registry, const util::ThreadPool& pool) {
  const util::ThreadPool::Stats stats = pool.stats();
  registry.counter("pool_jobs_total").inc(stats.jobs);
  registry.counter("pool_inline_jobs_total").inc(stats.inline_jobs);
  registry.counter("pool_parallel_jobs_total").inc(stats.parallel_jobs);
  registry.counter("pool_chunks_total").inc(stats.chunks);
  registry.counter("pool_wait_us_total").inc(stats.wait_us);
  registry.gauge("pool_threads").set(static_cast<double>(pool.thread_count()));
}

}  // namespace cyclops::obs

// Scoped timing spans.
//
// WallSpan measures wall-clock time (solver hot paths, pool waits) with a
// steady_clock stopwatch and records microseconds into a Histogram on
// destruction.  SimSpan measures simulated time: it captures a start
// SimTimeUs and records `now - start` when end() is called with the
// scheduler's clock — sim-time spans are deterministic and participate in
// the bit-identical-across-thread-counts contract; wall spans do not (by
// nature) and must never feed a determinism-checked metric.
//
// Both are null-safe: a span built over a null histogram is a no-op, which
// is how `if constexpr (obs::kEnabled)`-free call sites stay cheap when a
// caller passes no registry.
#pragma once

#include <chrono>
#include <string>

#include "obs/registry.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::util {
class ThreadPool;
}  // namespace cyclops::util

namespace cyclops::obs {

/// RAII wall-clock span: records elapsed microseconds on destruction.
class WallSpan {
 public:
  explicit WallSpan(Histogram* histogram) noexcept
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;
  ~WallSpan() {
    if (histogram_ != nullptr) histogram_->record(elapsed_us());
  }

  double elapsed_us() const noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Sim-time span: explicit start/end because simulated time only advances
/// through the scheduler, not in the background.
class SimSpan {
 public:
  SimSpan() = default;
  SimSpan(Histogram* histogram, util::SimTimeUs start) noexcept
      : histogram_(histogram), start_(start) {}

  /// Records `now - start` microseconds (once; later calls are no-ops).
  void end(util::SimTimeUs now) noexcept {
    if (histogram_ != nullptr) {
      histogram_->record(static_cast<double>(now - start_));
      histogram_ = nullptr;
    }
  }
  bool open() const noexcept { return histogram_ != nullptr; }
  util::SimTimeUs start() const noexcept { return start_; }

 private:
  Histogram* histogram_ = nullptr;
  util::SimTimeUs start_ = 0;
};

/// Convenience factory bound to a registry (nullable): hands out spans by
/// metric name.  Histogram lookups take the registry lock — hoist spans'
/// histograms via registry.histogram() in hot loops instead.
class Tracer {
 public:
  explicit Tracer(Registry* registry) noexcept : registry_(registry) {}

  WallSpan wall(const std::string& name, Labels labels = {});
  SimSpan sim(const std::string& name, util::SimTimeUs start,
              Labels labels = {});

 private:
  Registry* registry_;
};

/// Snapshots a pool's lifetime dispatch stats into `registry` as
/// `pool_*` counters/gauges.  Call once at report time, not per job.
void record_thread_pool(Registry& registry, const util::ThreadPool& pool);

}  // namespace cyclops::obs

// Build-time switch for the telemetry subsystem.
//
// `-DCYCLOPS_OBS=OFF` at configure time defines CYCLOPS_OBS_ENABLED=0 for
// the whole tree; instrumentation sites guard their recording code with
// `if constexpr (obs::kEnabled)`, so an OFF build compiles every site to a
// no-op (the discarded branch is eliminated, not just skipped at runtime).
// The obs *library* — metric types, registry, exporters — stays fully
// functional in both modes: only the cross-cutting instrumentation of the
// control plane disappears, so code that owns its metrics explicitly
// (e.g. event::EventCounter) behaves identically in either build.
#pragma once

#ifndef CYCLOPS_OBS_ENABLED
#define CYCLOPS_OBS_ENABLED 1
#endif

namespace cyclops::obs {

inline constexpr bool kEnabled = CYCLOPS_OBS_ENABLED != 0;

}  // namespace cyclops::obs

// Typed metric primitives: Counter, Gauge, and a fixed-bucket HDR-style
// Histogram.  All three are thread-safe via relaxed atomics and mergeable,
// which is what makes sharded accumulation deterministic: every recorded
// value is an integer bucket/count update (commutative, exact), and the
// derived statistics (approx_sum / approx_mean / approx_quantile) are pure
// functions of the integer bucket counts and the fixed bucket bounds — no
// floating-point accumulator whose value could depend on merge order or
// thread count.  See DESIGN.md §10.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

namespace cyclops::obs {

/// Monotonic event count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void merge_from(const Counter& other) noexcept { inc(other.value()); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (thread count, config knobs, final watermarks).
/// merge_from keeps the MAX of the two values once both sides have ever
/// written (never-written sources are a no-op) — max is commutative and
/// associative, so shard/fleet rollups are merge-order independent even
/// when sessions record different values.  Within one session the usual
/// advice stands: record a gauge once, from the driver thread.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    set_count_.fetch_add(1, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  bool ever_set() const noexcept {
    return set_count_.load(std::memory_order_relaxed) != 0;
  }
  void merge_from(const Gauge& other) noexcept {
    if (!other.ever_set()) return;
    if (!ever_set() || other.value() > value()) set(other.value());
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<std::uint64_t> set_count_{0};
};

/// Bucket layout for a Histogram: `bounds[i]` is the inclusive upper edge
/// of finite bucket i (ascending); one implicit overflow bucket catches
/// everything above bounds.back().  Two histograms merge only when their
/// specs compare equal.
struct HistogramSpec {
  std::vector<double> bounds;

  /// Log-scale edges lo * 10^(i / per_decade) for i = 0 .. n, where n is
  /// the smallest count whose last edge reaches `hi`.  HDR-style: relative
  /// error is bounded by the per-decade resolution at every magnitude.
  static HistogramSpec log_scale(double lo, double hi, int per_decade);

  /// n finite buckets with edges lo + width, lo + 2*width, ..., lo + n*width.
  static HistogramSpec linear(double lo, double width, int n);

  /// Default layout for microsecond durations: 1 µs .. 10 s at five
  /// buckets per decade (36 finite buckets, <= 58% relative edge spacing).
  static HistogramSpec duration_us() { return log_scale(1.0, 1e7, 5); }

  bool operator==(const HistogramSpec&) const = default;
};

/// Fixed-bucket histogram.  record() is an integer increment on one bucket
/// plus commutative min/max updates, so concurrent recording from pool
/// workers is exact; derived statistics come from the bucket counts alone.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double v) noexcept;

  const HistogramSpec& spec() const noexcept { return spec_; }
  /// Finite buckets + 1 overflow bucket.
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// +inf / -inf when nothing was recorded.
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }

  /// Sum estimated from bucket counts x upper bucket edges (overflow
  /// clamped to the last finite edge).  Deterministic: depends only on the
  /// integer counts and the spec, never on recording or merge order.
  double approx_sum() const noexcept;
  double approx_mean() const noexcept;
  /// Upper edge of the bucket holding the q-quantile rank (q in [0, 1]).
  /// 0 when empty.
  double approx_quantile(double q) const noexcept;

  /// Index of the bucket a value lands in (exposed for tests/importers).
  std::size_t bucket_index(double v) const noexcept;

  void merge_from(const Histogram& other) noexcept;

  /// Importer plumbing (from_jsonl): bulk-add to one bucket and restore
  /// the recorded extrema without re-deriving them from edges.
  void add_bucket(std::size_t i, std::uint64_t n) noexcept;
  void set_extrema(double min_v, double max_v) noexcept;

 private:
  void update_min(double v) noexcept;
  void update_max(double v) noexcept;

  HistogramSpec spec_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace cyclops::obs

// Registry exporters: Prometheus text exposition and JSONL.
//
// Prometheus text is the human/scrape-facing format: `# TYPE` comments,
// cumulative `_bucket{le="..."}` lines, derived `_sum`/`_count`.  It drops
// histogram min/max (the format has no slot for them), but is otherwise
// stable under a round-trip: to_prometheus(parse(to_prometheus(r))) is
// byte-identical because `_sum` is the bucket-derived approx_sum, never a
// stored float.
//
// JSONL is the machine format (one metric per line, full fidelity: bounds,
// per-bucket counts, count, min/max) and round-trips exactly.  Both use
// util::json_number so numbers survive text <-> double unchanged.
#pragma once

#include <string>
#include <string_view>

#include "obs/registry.hpp"

namespace cyclops::obs {

std::string to_prometheus(const Registry& registry);

/// Parses Prometheus text produced by to_prometheus into `out` (merging
/// into whatever `out` already holds).  Returns false on malformed input.
bool from_prometheus(std::string_view text, Registry& out);

std::string to_jsonl(const Registry& registry);

/// Parses JSONL produced by to_jsonl into `out`.  Returns false on
/// malformed input.
bool from_jsonl(std::string_view text, Registry& out);

}  // namespace cyclops::obs

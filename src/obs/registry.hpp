// Metric registry: get-or-create by (name, labels), stable sorted
// iteration for exporters, and shard-per-worker accumulation that merges
// deterministically (shard 0, 1, 2, ... in order) so parallel runs report
// bit-identical metric values at any thread count.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/config.hpp"
#include "obs/metrics.hpp"

namespace cyclops::obs {

/// Sorted label set, e.g. {{"plane", "session"}}.  Kept sorted by key so
/// two label sets compare equal regardless of construction order.
using Labels = std::map<std::string, std::string>;

/// Registry map key.  Ordering (name first, then labels) fixes exporter
/// output order.
struct MetricKey {
  std::string name;
  Labels labels;

  auto operator<=>(const MetricKey&) const = default;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create.  Returned references stay valid for the registry's
  /// lifetime (hoist them out of hot loops; creation takes a lock).
  Counter& counter(std::string name, Labels labels = {});
  Gauge& gauge(std::string name, Labels labels = {});
  /// `spec` is used on first creation; later calls must pass an equal spec.
  Histogram& histogram(std::string name, const HistogramSpec& spec,
                       Labels labels = {});

  /// Snapshot of the current key set, sorted (map order).  The pointed-to
  /// metrics are live — values read through them are current, not frozen.
  std::vector<std::pair<MetricKey, const Counter*>> counters() const;
  std::vector<std::pair<MetricKey, const Gauge*>> gauges() const;
  std::vector<std::pair<MetricKey, const Histogram*>> histograms() const;

  /// Folds `other` into this registry, creating metrics as needed.
  void merge_from(const Registry& other);

  bool empty() const;

  /// Process-wide registry for call sites with no registry parameter
  /// (solver hot paths, ThreadPool snapshots).
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<MetricKey, std::unique_ptr<Counter>> counters_;
  std::map<MetricKey, std::unique_ptr<Gauge>> gauges_;
  std::map<MetricKey, std::unique_ptr<Histogram>> histograms_;
};

/// One registry per pool worker chunk.  The parallel section records into
/// `shard(chunk)` (chunk indices are stable under PR-1 static chunking),
/// then the driver calls merge_into() which folds shards in index order —
/// the only ordering rule needed for deterministic merged values, and it
/// is trivially satisfied because merging is single-threaded.
class ShardedRegistry {
 public:
  explicit ShardedRegistry(std::size_t shards);

  Registry& shard(std::size_t i) { return *shards_[i]; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Folds every shard into `target`, shard 0 first.
  void merge_into(Registry& target);

 private:
  std::vector<std::unique_ptr<Registry>> shards_;
};

}  // namespace cyclops::obs

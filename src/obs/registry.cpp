#include "obs/registry.hpp"

#include <cassert>

namespace cyclops::obs {

Counter& Registry::counter(std::string name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[MetricKey{std::move(name), std::move(labels)}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[MetricKey{std::move(name), std::move(labels)}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string name, const HistogramSpec& spec,
                               Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[MetricKey{std::move(name), std::move(labels)}];
  if (!slot) slot = std::make_unique<Histogram>(spec);
  assert(slot->spec() == spec);
  return *slot;
}

std::vector<std::pair<MetricKey, const Counter*>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<MetricKey, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [key, metric] : counters_) out.emplace_back(key, metric.get());
  return out;
}

std::vector<std::pair<MetricKey, const Gauge*>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<MetricKey, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [key, metric] : gauges_) out.emplace_back(key, metric.get());
  return out;
}

std::vector<std::pair<MetricKey, const Histogram*>> Registry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<MetricKey, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [key, metric] : histograms_)
    out.emplace_back(key, metric.get());
  return out;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [key, metric] : other.counters()) {
    counter(key.name, key.labels).merge_from(*metric);
  }
  for (const auto& [key, metric] : other.gauges()) {
    gauge(key.name, key.labels).merge_from(*metric);
  }
  for (const auto& [key, metric] : other.histograms()) {
    histogram(key.name, metric->spec(), key.labels).merge_from(*metric);
  }
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

ShardedRegistry::ShardedRegistry(std::size_t shards) {
  assert(shards > 0);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Registry>());
  }
}

void ShardedRegistry::merge_into(Registry& target) {
  for (auto& shard : shards_) target.merge_from(*shard);
}

}  // namespace cyclops::obs

#include "opt/annealing.hpp"

#include <cmath>

namespace cyclops::opt {

AnnealingResult simulated_annealing(
    const std::function<double(std::span<const double>)>& fn,
    std::vector<double> x0, const AnnealingOptions& options, util::Rng& rng) {
  AnnealingResult result;
  std::vector<double> current = std::move(x0);
  double current_value = fn(current);
  result.params = current;
  result.value = current_value;
  result.evaluations = 1;

  double temperature = options.initial_temperature;
  std::vector<double> candidate = current;

  for (int iter = 0; iter < options.iterations; ++iter) {
    // Propose: perturb one random coordinate (better acceptance in
    // moderate dimension than all-coordinate moves).
    candidate = current;
    const std::size_t j = rng.uniform_index(current.size());
    const double scale =
        (j < options.step_scales.size() ? options.step_scales[j]
                                        : options.default_step) *
        std::sqrt(temperature / options.initial_temperature);
    candidate[j] += rng.normal(0.0, scale);

    const double value = fn(candidate);
    ++result.evaluations;
    const double delta = value - current_value;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-12))) {
      current = candidate;
      current_value = value;
      ++result.accepted;
      if (current_value < result.value) {
        result.value = current_value;
        result.params = current;
      }
    }
    temperature *= options.cooling;
  }
  return result;
}

}  // namespace cyclops::opt

// Nelder-Mead downhill simplex for derivative-free minimization.
//
// Used where residual structure is unavailable: the exhaustive-aligner's
// local refinement over the 4 GM voltages, and ablation studies.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace cyclops::opt {

using ScalarFn = std::function<double(std::span<const double>)>;

struct NelderMeadOptions {
  int max_evaluations = 4000;
  /// Initial simplex edge length per dimension (scaled by this factor
  /// relative to |x0| or 1).
  double initial_step = 0.1;
  /// Converged when the simplex's function-value spread falls below this.
  double f_tolerance = 1e-12;
  /// Converged when the simplex's parameter spread falls below this.
  double x_tolerance = 1e-10;
};

struct NelderMeadResult {
  std::vector<double> params;
  double value = 0.0;
  int evaluations = 0;
  bool converged = false;
};

NelderMeadResult nelder_mead(const ScalarFn& fn, std::vector<double> x0,
                             const NelderMeadOptions& options = {});

}  // namespace cyclops::opt

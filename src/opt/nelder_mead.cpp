#include "opt/nelder_mead.hpp"

#include <algorithm>
#include <cmath>

namespace cyclops::opt {

NelderMeadResult nelder_mead(const ScalarFn& fn, std::vector<double> x0,
                             const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  NelderMeadResult result;
  int evals = 0;
  const auto eval = [&](std::span<const double> x) {
    ++evals;
    return fn(x);
  };

  // Build the initial simplex: x0 plus one offset vertex per dimension.
  std::vector<std::vector<double>> simplex(n + 1, x0);
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double step =
        options.initial_step * std::max(1.0, std::abs(x0[i]));
    simplex[i + 1][i] += step;
  }
  for (std::size_t i = 0; i <= n; ++i) values[i] = eval(simplex[i]);

  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  std::vector<std::size_t> order(n + 1);
  std::vector<double> centroid(n), reflected(n), candidate(n);

  while (evals < options.max_evaluations) {
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    // Convergence checks.
    const double f_spread = std::abs(values[worst] - values[best]);
    double x_spread = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x_spread = std::max(
          x_spread, std::abs(simplex[worst][i] - simplex[best][i]));
    }
    if (f_spread < options.f_tolerance || x_spread < options.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    for (std::size_t j = 0; j < n; ++j) {
      reflected[j] = centroid[j] + kAlpha * (centroid[j] - simplex[worst][j]);
    }
    const double f_reflected = eval(reflected);

    if (f_reflected < values[best]) {
      for (std::size_t j = 0; j < n; ++j) {
        candidate[j] = centroid[j] + kGamma * (reflected[j] - centroid[j]);
      }
      const double f_expanded = eval(candidate);
      if (f_expanded < f_reflected) {
        simplex[worst] = candidate;
        values[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        values[worst] = f_reflected;
      }
    } else if (f_reflected < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = f_reflected;
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        candidate[j] = centroid[j] + kRho * (simplex[worst][j] - centroid[j]);
      }
      const double f_contracted = eval(candidate);
      if (f_contracted < values[worst]) {
        simplex[worst] = candidate;
        values[worst] = f_contracted;
      } else {
        // Shrink all vertices toward the best.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t j = 0; j < n; ++j) {
            simplex[i][j] =
                simplex[best][j] + kSigma * (simplex[i][j] - simplex[best][j]);
          }
          values[i] = eval(simplex[i]);
        }
      }
    }
  }

  const auto best_it = std::min_element(values.begin(), values.end());
  result.params = simplex[static_cast<std::size_t>(best_it - values.begin())];
  result.value = *best_it;
  result.evaluations = evals;
  return result;
}

}  // namespace cyclops::opt

// Simulated annealing for global minimization.
//
// The Stage-2 mapping fit is a 12-parameter nonconvex problem; LM from a
// decent manual guess almost always lands in the right basin, but a
// from-scratch deployment (no manual measurement at all) needs a global
// stage.  Annealing over the pose parameters followed by an LM polish
// covers that case (see core::calibrate_prototype's multi-start and
// tests/opt_annealing_test.cpp).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace cyclops::opt {

struct AnnealingOptions {
  int iterations = 20000;
  double initial_temperature = 1.0;
  /// Exponential cooling: T_k = T0 * cooling^k (per iteration).
  double cooling = 0.9995;
  /// Per-parameter proposal scale at T = T0 (scaled by sqrt(T/T0)).
  std::vector<double> step_scales;
  /// Default proposal scale when step_scales is empty.
  double default_step = 0.1;
};

struct AnnealingResult {
  std::vector<double> params;
  double value = 0.0;
  int evaluations = 0;
  int accepted = 0;
};

/// Minimizes fn by Metropolis annealing from x0.
AnnealingResult simulated_annealing(
    const std::function<double(std::span<const double>)>& fn,
    std::vector<double> x0, const AnnealingOptions& options, util::Rng& rng);

}  // namespace cyclops::opt

// Small dense linear algebra for the nonlinear least-squares solver.
// Parameter counts in Cyclops are tiny (<= ~20), so simple O(n^3) routines
// are more than adequate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cyclops::opt {

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// A^T * A for matrix A (result is cols x cols, symmetric PSD).
Matrix normal_matrix(const Matrix& a);

/// A^T * b.
std::vector<double> transpose_times(const Matrix& a, std::span<const double> b);

/// Solves the symmetric positive-definite system m*x = b by Cholesky.
/// Returns false if m is not positive definite (within tolerance).
bool solve_spd(const Matrix& m, std::span<const double> b,
               std::vector<double>& x);

/// Solves a general square system by Gaussian elimination with partial
/// pivoting.  Returns false if singular.
bool solve_general(Matrix m, std::vector<double> b, std::vector<double>& x);

}  // namespace cyclops::opt

#include "opt/levmar.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/span.hpp"
#include "opt/linalg.hpp"

namespace cyclops::opt {
namespace {

double cost_of(std::span<const double> residuals) {
  double c = 0.0;
  for (double r : residuals) c += r * r;
  return c;
}

/// Solver metric handles, resolved from the *calling context's* registry
/// (a few locked lookups per solve — noise next to the residual
/// evaluations a solve performs; relaxed atomic ops afterwards).
/// Iteration counts are integers, so the histogram stays deterministic
/// even when calibration fans solves out over the pool.
struct LmMetrics {
  obs::Counter& solves;
  obs::Counter& converged;
  obs::Histogram& iterations;
  obs::Histogram& wall_us;

  explicit LmMetrics(obs::Registry& registry)
      : solves(registry.counter("lm_solves_total")),
        converged(registry.counter("lm_converged_total")),
        iterations(registry.histogram(
            "lm_iterations", obs::HistogramSpec::linear(-0.5, 1.0, 64))),
        wall_us(registry.histogram("lm_solve_wall_us",
                                   obs::HistogramSpec::duration_us())) {}
};

}  // namespace

void numeric_jacobian(const ResidualFn& fn, std::span<const double> params,
                      double epsilon, Matrix& jacobian) {
  std::vector<double> p(params.begin(), params.end());
  std::vector<double> probe;
  fn(p, probe);  // size probe
  JacobianScratch scratch;
  numeric_jacobian(fn, params, epsilon, probe.size(), jacobian, scratch);
}

void numeric_jacobian(const ResidualFn& fn, std::span<const double> params,
                      double epsilon, std::size_t residual_count,
                      Matrix& jacobian, JacobianScratch& scratch,
                      util::ThreadPool& pool) {
  const std::size_t m = residual_count;
  const std::size_t n = params.size();
  if (jacobian.rows() != m || jacobian.cols() != n) jacobian = Matrix(m, n);
  const std::size_t max_chunks = pool.thread_count();
  if (scratch.params.size() < max_chunks) {
    scratch.params.resize(max_chunks);
    scratch.r_plus.resize(max_chunks);
    scratch.r_minus.resize(max_chunks);
  }
  // Each chunk perturbs its own parameter copy and fills disjoint columns
  // of the (pre-sized) Jacobian; per-column arithmetic is exactly the
  // serial loop's, so the result is independent of the chunking.
  pool.run_chunked(n, [&](std::size_t chunk, std::size_t begin,
                          std::size_t end) {
    std::vector<double>& p = scratch.params[chunk];
    std::vector<double>& r_plus = scratch.r_plus[chunk];
    std::vector<double>& r_minus = scratch.r_minus[chunk];
    p.assign(params.begin(), params.end());
    for (std::size_t j = begin; j < end; ++j) {
      // Scale the step with the parameter magnitude for conditioning.
      const double h = epsilon * std::max(1.0, std::abs(p[j]));
      const double saved = p[j];
      p[j] = saved + h;
      fn(p, r_plus);
      p[j] = saved - h;
      fn(p, r_minus);
      p[j] = saved;
      for (std::size_t i = 0; i < m; ++i) {
        jacobian(i, j) = (r_plus[i] - r_minus[i]) / (2.0 * h);
      }
    }
  });
}

LmStepper::LmStepper(ResidualFn fn, std::vector<double> initial_guess,
                     const LevMarOptions& options, const runtime::Context& ctx)
    : fn_(std::move(fn)),
      options_(options),
      ctx_(&ctx),
      params_(std::move(initial_guess)),
      lambda_(options.initial_lambda) {
  init_residuals();
  initial_cost_ = cost_;
}

LmStepper::LmStepper(ResidualFn fn, const LmCheckpoint& checkpoint,
                     const LevMarOptions& options, const runtime::Context& ctx)
    : fn_(std::move(fn)),
      options_(options),
      ctx_(&ctx),
      params_(checkpoint.params),
      initial_cost_(checkpoint.initial_cost),
      lambda_(checkpoint.lambda),
      iterations_(checkpoint.iterations),
      converged_(checkpoint.converged) {
  // The checkpoint carries no residuals: they are a pure function of the
  // parameters, so recomputing yields the exact vector the interrupted
  // solve held — the continuation stays bit-identical.
  init_residuals();
}

void LmStepper::init_residuals() {
  fn_(params_, residuals_);
  cost_ = cost_of(residuals_);
}

bool LmStepper::step() {
  if (done()) return false;
  // One outer iteration of the historical one-shot loop, verbatim.
  iterations_ += 1;
  numeric_jacobian(fn_, params_, options_.jacobian_epsilon, residuals_.size(),
                   jac_, scratch_, ctx_->pool());
  Matrix jtj = normal_matrix(jac_);
  std::vector<double> jtr = transpose_times(jac_, residuals_);

  bool stepped = false;
  // Inner damping loop: grow lambda until a cost-reducing step is found.
  for (int attempt = 0; attempt < 30; ++attempt) {
    Matrix damped = jtj;
    for (std::size_t d = 0; d < damped.rows(); ++d) {
      damped(d, d) += lambda_ * std::max(jtj(d, d), 1e-12);
    }
    if (!solve_spd(damped, jtr, step_)) {
      lambda_ *= options_.lambda_up;
      continue;
    }
    candidate_ = params_;
    double step_norm = 0.0;
    for (std::size_t j = 0; j < params_.size(); ++j) {
      candidate_[j] -= step_[j];
      step_norm = std::max(step_norm, std::abs(step_[j]));
    }
    fn_(candidate_, cand_residuals_);
    const double cand_cost = cost_of(cand_residuals_);
    if (cand_cost < cost_) {
      const double improvement =
          (cost_ - cand_cost) / std::max(cost_, 1e-300);
      params_ = candidate_;
      residuals_ = cand_residuals_;
      cost_ = cand_cost;
      lambda_ = std::max(lambda_ * options_.lambda_down, 1e-12);
      stepped = true;
      if (improvement < options_.cost_tolerance ||
          step_norm < options_.step_tolerance) {
        converged_ = true;
      }
      break;
    }
    lambda_ *= options_.lambda_up;
  }
  if (!stepped) {
    // No downhill step found: treat as converged at a (local) minimum.
    converged_ = true;
  }
  return !done();
}

LmCheckpoint LmStepper::checkpoint() const {
  return {params_, lambda_, initial_cost_, iterations_, converged_};
}

LevMarResult LmStepper::result() const {
  LevMarResult result;
  result.params = params_;
  result.initial_cost = initial_cost_;
  result.final_cost = cost_;
  result.iterations = iterations_;
  result.converged = converged_;
  return result;
}

LevMarResult levenberg_marquardt(const ResidualFn& fn,
                                 std::vector<double> initial_guess,
                                 const LevMarOptions& options,
                                 const runtime::Context& ctx) {
  std::optional<LmMetrics> metrics;
  if constexpr (obs::kEnabled) metrics.emplace(ctx.registry());
  obs::WallSpan span(metrics ? &metrics->wall_us : nullptr);

  LmStepper stepper(fn, std::move(initial_guess), options, ctx);
  while (stepper.step()) {
  }

  LevMarResult result = stepper.result();
  if constexpr (obs::kEnabled) {
    metrics->solves.inc();
    if (result.converged) metrics->converged.inc();
    metrics->iterations.record(static_cast<double>(result.iterations));
  }
  return result;
}

}  // namespace cyclops::opt

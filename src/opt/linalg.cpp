#include "opt/linalg.hpp"

#include <cmath>

namespace cyclops::opt {

Matrix normal_matrix(const Matrix& a) {
  Matrix n(a.cols(), a.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = i; j < a.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.rows(); ++k) sum += a(k, i) * a(k, j);
      n(i, j) = sum;
      n(j, i) = sum;
    }
  }
  return n;
}

std::vector<double> transpose_times(const Matrix& a, std::span<const double> b) {
  std::vector<double> out(a.cols(), 0.0);
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += a(k, j) * b[k];
  }
  return out;
}

bool solve_spd(const Matrix& m, std::span<const double> b,
               std::vector<double>& x) {
  const std::size_t n = m.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = m(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) return false;
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  // Forward substitution L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution L^T x = y.
  x.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return true;
}

bool solve_general(Matrix m, std::vector<double> b, std::vector<double>& x) {
  const std::size_t n = m.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(m(r, col)) > std::abs(m(pivot, col))) pivot = r;
    }
    if (std::abs(m(pivot, col)) < 1e-14) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(m(pivot, c), m(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = m(r, col) / m(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) m(r, c) -= f * m(col, c);
      b[r] -= f * b[col];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) sum -= m(ii, c) * x[c];
    x[ii] = sum / m(ii, ii);
  }
  return true;
}

}  // namespace cyclops::opt

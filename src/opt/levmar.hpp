// Levenberg-Marquardt nonlinear least squares.
//
// This is the from-scratch substitute for the paper's use of SciPy's
// optimizer [57]: it fits the Stage-1 GMA parameters (13 values from 266
// board samples) and the Stage-2 mapping parameters (12 values from ~30
// aligned-link samples).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "runtime/context.hpp"
#include "util/thread_pool.hpp"

namespace cyclops::opt {

/// Residual function: fills `residuals` given `params`.  The residual vector
/// length must be fixed across calls.
using ResidualFn =
    std::function<void(std::span<const double> params, std::vector<double>& residuals)>;

struct LevMarOptions {
  int max_iterations = 200;
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.5;
  /// Stop when the relative cost improvement falls below this.
  double cost_tolerance = 1e-12;
  /// Stop when the step's infinity norm falls below this.
  double step_tolerance = 1e-12;
  /// Finite-difference step for the numeric Jacobian.
  double jacobian_epsilon = 1e-7;
};

struct LevMarResult {
  std::vector<double> params;
  double initial_cost = 0.0;  ///< Sum of squared residuals at the start.
  double final_cost = 0.0;    ///< Sum of squared residuals at the solution.
  int iterations = 0;
  bool converged = false;
};

/// Minimizes sum of squared residuals starting from `initial_guess`.
/// Jacobian columns are fanned out over `ctx.pool()`, and the solver's
/// `lm_*` metrics land in `ctx.registry()` — the default context
/// reproduces the old global-pool/global-registry behavior, while a
/// session-scoped context keeps concurrent solvers fully isolated.
LevMarResult levenberg_marquardt(
    const ResidualFn& fn, std::vector<double> initial_guess,
    const LevMarOptions& options = {},
    const runtime::Context& ctx = runtime::Context::default_ctx());

/// Per-chunk scratch for the parallel Jacobian (one parameter/residual
/// buffer set per pool chunk).  Owned by the caller so repeated Jacobian
/// evaluations (every LM iteration) reuse the allocations.
struct JacobianScratch {
  std::vector<std::vector<double>> params;
  std::vector<std::vector<double>> r_plus;
  std::vector<std::vector<double>> r_minus;
};

/// Central-difference Jacobian of `fn` at `params` (rows = residuals,
/// cols = params), exposed for tests.  Calls `fn` once to size the
/// residual vector, then delegates to the sized overload.
void numeric_jacobian(const ResidualFn& fn, std::span<const double> params,
                      double epsilon, class Matrix& jacobian);

/// Column-parallel central differences: columns are statically chunked
/// over `pool`, each chunk perturbing its own copy of `params` into its
/// own residual buffers, so the result is bit-identical to the serial path
/// at any thread count.  `residual_count` is the (fixed) residual vector
/// length — callers that already evaluated `fn` pass it to skip the
/// sizing probe.
void numeric_jacobian(const ResidualFn& fn, std::span<const double> params,
                      double epsilon, std::size_t residual_count,
                      class Matrix& jacobian, JacobianScratch& scratch,
                      util::ThreadPool& pool = util::ThreadPool::global());

}  // namespace cyclops::opt

// Levenberg-Marquardt nonlinear least squares.
//
// This is the from-scratch substitute for the paper's use of SciPy's
// optimizer [57]: it fits the Stage-1 GMA parameters (13 values from 266
// board samples) and the Stage-2 mapping parameters (12 values from ~30
// aligned-link samples).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "opt/linalg.hpp"
#include "runtime/context.hpp"
#include "util/thread_pool.hpp"

namespace cyclops::opt {

/// Residual function: fills `residuals` given `params`.  The residual vector
/// length must be fixed across calls.
using ResidualFn =
    std::function<void(std::span<const double> params, std::vector<double>& residuals)>;

struct LevMarOptions {
  int max_iterations = 200;
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.5;
  /// Stop when the relative cost improvement falls below this.
  double cost_tolerance = 1e-12;
  /// Stop when the step's infinity norm falls below this.
  double step_tolerance = 1e-12;
  /// Finite-difference step for the numeric Jacobian.
  double jacobian_epsilon = 1e-7;
};

struct LevMarResult {
  std::vector<double> params;
  double initial_cost = 0.0;  ///< Sum of squared residuals at the start.
  double final_cost = 0.0;    ///< Sum of squared residuals at the solution.
  int iterations = 0;
  bool converged = false;
};

/// Minimizes sum of squared residuals starting from `initial_guess`.
/// Jacobian columns are fanned out over `ctx.pool()`, and the solver's
/// `lm_*` metrics land in `ctx.registry()` — the default context
/// reproduces the old global-pool/global-registry behavior, while a
/// session-scoped context keeps concurrent solvers fully isolated.
/// (Implemented as an adapter over LmStepper; bit-identical to the
/// pre-stepper one-shot loop.)
LevMarResult levenberg_marquardt(
    const ResidualFn& fn, std::vector<double> initial_guess,
    const LevMarOptions& options = {},
    const runtime::Context& ctx = runtime::Context::default_ctx());

/// Per-chunk scratch for the parallel Jacobian (one parameter/residual
/// buffer set per pool chunk).  Owned by the caller so repeated Jacobian
/// evaluations (every LM iteration) reuse the allocations.
struct JacobianScratch {
  std::vector<std::vector<double>> params;
  std::vector<std::vector<double>> r_plus;
  std::vector<std::vector<double>> r_minus;
};

/// Central-difference Jacobian of `fn` at `params` (rows = residuals,
/// cols = params), exposed for tests.  Calls `fn` once to size the
/// residual vector, then delegates to the sized overload.
void numeric_jacobian(const ResidualFn& fn, std::span<const double> params,
                      double epsilon, class Matrix& jacobian);

/// Column-parallel central differences: columns are statically chunked
/// over `pool`, each chunk perturbing its own copy of `params` into its
/// own residual buffers, so the result is bit-identical to the serial path
/// at any thread count.  `residual_count` is the (fixed) residual vector
/// length — callers that already evaluated `fn` pass it to skip the
/// sizing probe.
void numeric_jacobian(const ResidualFn& fn, std::span<const double> params,
                      double epsilon, std::size_t residual_count,
                      class Matrix& jacobian, JacobianScratch& scratch,
                      util::ThreadPool& pool = util::ThreadPool::global());

/// Everything needed to resume an interrupted LM solve at an iteration
/// boundary.  Residuals are deliberately absent: they are a deterministic
/// function of `params`, so the resume constructor recomputes them and the
/// continuation is bit-exact with the uninterrupted run.
struct LmCheckpoint {
  std::vector<double> params;
  double lambda = 0.0;
  double initial_cost = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Iteration-granular Levenberg-Marquardt: one outer LM iteration per
/// step(), with the exact arithmetic (and ordering) of the historical
/// one-shot loop — pausing after any step and resuming from checkpoint()
/// produces bit-identical parameters, costs, and iteration counts.
/// The `lm_*` registry metrics stay in the levenberg_marquardt adapter:
/// a stepper records nothing, so engines driving it directly decide when
/// a "solve" happened (cal::CalibrationEngine re-emits them on fit
/// completion).
class LmStepper {
 public:
  /// Fresh solve: evaluates the residuals at `initial_guess` once (the
  /// one-shot path's pre-loop evaluation).
  LmStepper(ResidualFn fn, std::vector<double> initial_guess,
            const LevMarOptions& options = {},
            const runtime::Context& ctx = runtime::Context::default_ctx());

  /// Resume: re-evaluates the residuals at the checkpoint parameters and
  /// continues exactly where the interrupted solve stopped.
  LmStepper(ResidualFn fn, const LmCheckpoint& checkpoint,
            const LevMarOptions& options = {},
            const runtime::Context& ctx = runtime::Context::default_ctx());

  /// True when the solve can take no further iteration (converged, or the
  /// iteration budget is exhausted).
  bool done() const noexcept {
    return converged_ || iterations_ >= options_.max_iterations;
  }

  /// Runs one LM iteration if not done.  Returns !done() afterwards, so
  /// `while (stepper.step()) {}` reproduces the one-shot solve.
  bool step();

  /// Resumable snapshot at the current iteration boundary.
  LmCheckpoint checkpoint() const;

  /// Result snapshot (final once done() is true).
  LevMarResult result() const;

  int iterations() const noexcept { return iterations_; }
  double cost() const noexcept { return cost_; }

 private:
  void init_residuals();

  ResidualFn fn_;
  LevMarOptions options_;
  const runtime::Context* ctx_;

  std::vector<double> params_;
  std::vector<double> residuals_;
  double cost_ = 0.0;
  double initial_cost_ = 0.0;
  double lambda_ = 0.0;
  int iterations_ = 0;
  bool converged_ = false;

  // Iteration scratch, reused across step() calls exactly as the one-shot
  // loop reused it across iterations.
  Matrix jac_;
  JacobianScratch scratch_;
  std::vector<double> step_, candidate_, cand_residuals_;
};

}  // namespace cyclops::opt

// Fixed-width text table printer used by the benchmark harness to emit
// paper-style tables (Table 1, Table 2, Table 3, ...).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cyclops::util {

/// Accumulates rows of strings and prints them column-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders the table with a header separator to the stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cyclops::util

// Radix-2 complex FFT (iterative Cooley-Tukey), 1-D and square 2-D.
//
// Used by the wave-optics validation layer (optics/field.hpp) to
// cross-check the parametric beam/coupling models against scalar
// diffraction.  Sizes are powers of two; throws otherwise.
#pragma once

#include <complex>
#include <vector>

namespace cyclops::util {

using Complex = std::complex<double>;

/// In-place FFT; `inverse` applies the 1/N-normalized inverse transform.
void fft(std::vector<Complex>& data, bool inverse = false);

/// In-place 2-D FFT of a row-major n x n grid.
void fft2(std::vector<Complex>& data, std::size_t n, bool inverse = false);

/// True iff n is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace cyclops::util

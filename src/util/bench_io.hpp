// Timing + JSON reporting shared by the bench/ harness binaries and the
// event engine's trace hooks (promoted from bench/bench_common so src/
// code can use it without depending on the harness).
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace cyclops::util {

/// printf format for JSON numbers: round-trips every double exactly.
/// Used by write_bench_json and event::JsonlTraceWriter so the two JSON
/// paths stay diffable against each other.
inline constexpr const char* kJsonNumberFormat = "%.17g";

/// Wall-clock stopwatch for serial-vs-parallel and legacy-vs-event
/// comparisons.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Writes `BENCH_<name>.json` in the working directory with the given
/// numeric fields (flat object; values printed with kJsonNumberFormat so
/// they round-trip).  Establishes the perf trajectory across PRs — run
/// the bench, diff the JSON.
void write_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& fields);

}  // namespace cyclops::util

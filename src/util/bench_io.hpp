// Timing + JSON reporting shared by the bench/ harness binaries and the
// event engine's trace hooks (promoted from bench/bench_common so src/
// code can use it without depending on the harness).
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "util/json_writer.hpp"  // kJsonNumberFormat lives here now

namespace cyclops::util {

/// Wall-clock stopwatch for serial-vs-parallel and legacy-vs-event
/// comparisons.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Schema version stamped into every BENCH_*.json.  Bump when the emitted
/// shape changes:
///   1 — flat {"name", <fields>} object (PR 1/2)
///   2 — adds schema_version / threads / git_rev metadata (PR 3)
///   3 — adds host_nproc / cpu_model host metadata (PR 9), so a perf
///       delta across committed JSONs is attributable to the hardware
///       that produced it
inline constexpr int kBenchSchemaVersion = 3;

/// Hardware concurrency of this host (0 if unknown).
std::size_t host_nproc();

/// The /proc/cpuinfo "model name" of core 0, or "unknown" off-Linux /
/// when unreadable.  Stamped into BENCH jsons as "cpu_model".
std::string cpu_model();

/// Validates a `git rev-parse --short HEAD`-shaped revision string: a
/// 4-40 character hex token passes through unchanged; anything else
/// (null, empty, an error message git printed instead of a hash, a
/// truncated/garbled build define) degrades to "unknown".  This is what
/// write_bench_json stamps as "git_rev", so a build from a tarball — no
/// git, no .git directory — still emits well-formed JSON.
std::string sanitized_git_rev(const char* raw);

/// Writes `BENCH_<name>.json` in the working directory: metadata
/// (schema_version, resolved thread count, git rev) followed by the given
/// numeric fields, all printed with kJsonNumberFormat so they round-trip.
/// Establishes the perf trajectory across PRs — run the bench, diff the
/// JSON.
void write_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& fields);

}  // namespace cyclops::util

#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace cyclops::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used to expand the user seed into the xoshiro state so that
// nearby seeds still produce decorrelated streams.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::from_state(const RngState& state) noexcept {
  Rng rng(0);
  for (int i = 0; i < 4; ++i) rng.s_[i] = state.s[i];
  rng.cached_normal_ = state.cached_normal;
  rng.has_cached_normal_ = state.has_cached_normal;
  return rng;
}

RngState Rng::state() const noexcept {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Bias is negligible for the n (<= millions) used in the simulator.
  return next_u64() % n;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

Rng Rng::split(std::uint64_t key) const noexcept {
  // Fold the full state with the key through splitmix64 so children of
  // nearby keys (0, 1, 2, ...) are decorrelated; const access only, so
  // concurrent keyed splits off a shared parent are race-free.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^
                     rotl(s_[3], 43) ^ (key + 1) * 0x9e3779b97f4a7c15ULL;
  return Rng(splitmix64(sm));
}

}  // namespace cyclops::util

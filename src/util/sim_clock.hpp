// Simulation time.  All Cyclops simulators share one monotonically advancing
// clock measured in integer microseconds to avoid floating-point drift when
// stepping millions of 1 ms slots.
#pragma once

#include <cstdint>

namespace cyclops::util {

/// Simulation timestamp / duration in microseconds.
using SimTimeUs = std::int64_t;

constexpr SimTimeUs us_from_ms(double ms) noexcept {
  return static_cast<SimTimeUs>(ms * 1e3);
}
constexpr SimTimeUs us_from_s(double s) noexcept {
  return static_cast<SimTimeUs>(s * 1e6);
}
constexpr double us_to_s(SimTimeUs t) noexcept { return static_cast<double>(t) * 1e-6; }
constexpr double us_to_ms(SimTimeUs t) noexcept { return static_cast<double>(t) * 1e-3; }

/// Monotonic simulation clock.
class SimClock {
 public:
  SimTimeUs now() const noexcept { return now_; }
  void advance(SimTimeUs dt) noexcept { now_ += dt; }
  void reset() noexcept { now_ = 0; }

 private:
  SimTimeUs now_ = 0;
};

}  // namespace cyclops::util

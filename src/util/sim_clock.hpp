// Simulation time.  All Cyclops simulators share one monotonically advancing
// clock measured in integer microseconds to avoid floating-point drift when
// stepping millions of 1 ms slots.
#pragma once

#include <cassert>
#include <cstdint>

namespace cyclops::util {

/// Simulation timestamp / duration in microseconds.
using SimTimeUs = std::int64_t;

/// Round-to-nearest, half away from zero (llround semantics, but
/// constexpr).  Truncation here used to break duration identities:
/// us_from_ms(2.3) was 2299, so three 0.1 ms timers and one 0.3 ms timer
/// could disagree by a microsecond.
constexpr SimTimeUs us_round(double us) noexcept {
  return static_cast<SimTimeUs>(us < 0.0 ? us - 0.5 : us + 0.5);
}

constexpr SimTimeUs us_from_ms(double ms) noexcept { return us_round(ms * 1e3); }
constexpr SimTimeUs us_from_s(double s) noexcept { return us_round(s * 1e6); }
constexpr double us_to_s(SimTimeUs t) noexcept { return static_cast<double>(t) * 1e-6; }
constexpr double us_to_ms(SimTimeUs t) noexcept { return static_cast<double>(t) * 1e-3; }

/// Monotonic simulation clock.
class SimClock {
 public:
  SimTimeUs now() const noexcept { return now_; }
  void advance(SimTimeUs dt) noexcept {
    assert(dt >= 0 && "SimClock cannot run backwards");
    now_ += dt;
  }
  /// Jump directly to `t` (>= now).  The event-loop hot path uses this to
  /// turn per-event clock updates into a single store instead of a
  /// read-subtract-add round trip.
  void advance_to(SimTimeUs t) noexcept {
    assert(t >= now_ && "SimClock cannot run backwards");
    now_ = t;
  }
  void reset() noexcept { now_ = 0; }

 private:
  SimTimeUs now_ = 0;
};

}  // namespace cyclops::util

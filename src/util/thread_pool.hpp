// Deterministic parallel runtime.
//
// A fixed pool of workers plus chunked *static* partitioning (no work
// stealing): `parallel_for(n, fn)` splits [0, n) into at most
// `thread_count()` contiguous chunks, chunk c always covers the same index
// range for a given (n, thread_count), and every index runs exactly the
// same arithmetic it would run serially.  As long as iteration i only
// writes state owned by i (its output slot, its child RNG), results are
// bit-identical to the serial path and independent of the thread count.
//
// Thread count resolution: explicit constructor argument, else the
// CYCLOPS_THREADS environment variable, else std::thread::hardware
// concurrency.  Escape hatches: ThreadPool::serial() is a pool that runs
// everything inline, and SerialScope forces *all* dispatch from the
// current thread inline for its lifetime (how benches time the serial
// baseline without re-plumbing every call site).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cyclops::util {

class ThreadPool {
 public:
  /// Chunk body: half-open index range [begin, end) plus the chunk's index
  /// (stable across runs — use it to pick per-chunk scratch buffers).
  using ChunkBody =
      std::function<void(std::size_t chunk, std::size_t begin, std::size_t end)>;

  /// `threads` == 0 resolves CYCLOPS_THREADS / hardware concurrency;
  /// `threads` == 1 is a purely inline (serial) pool.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (worker threads + the calling thread).
  std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// Runs `body` over [0, n) split into min(n, thread_count()) contiguous
  /// chunks; blocks until all chunks finish.  Runs inline when the pool is
  /// serial, when called from inside another pool job (nesting), or under
  /// an active SerialScope.
  void run_chunked(std::size_t n, const ChunkBody& body);

  /// Same, but with an explicit chunk count (clamped to [1, n]).  More
  /// chunks than executors are handed out through an atomic dispenser, so
  /// a straggler chunk no longer idles every other worker — the
  /// load-balancing fix for datasets whose items vary in cost.  Chunk
  /// index -> range stays the static chunk_range geometry and each chunk
  /// may write only state owned by its index, so results remain
  /// bit-identical at any thread count (which executor RUNS a chunk is
  /// nondeterministic; what the chunk computes is not).
  void run_chunked(std::size_t n, std::size_t chunks, const ChunkBody& body);

  /// Static chunk geometry: the index range of chunk c when [0, n) is
  /// split into `chunks` near-equal contiguous pieces.
  static std::pair<std::size_t, std::size_t> chunk_range(std::size_t n,
                                                         std::size_t chunks,
                                                         std::size_t c);

  /// Shared process-wide pool (CYCLOPS_THREADS / hardware concurrency).
  static ThreadPool& global();
  /// Shared always-inline pool — the `.serial()` escape hatch for call
  /// sites that take a pool parameter.
  static ThreadPool& serial();
  /// Thread count the environment requests: CYCLOPS_THREADS, else
  /// hardware concurrency, clamped to >= 1.  Resolved ONCE (first call)
  /// and cached — the single source of truth for every
  /// default-constructed pool; later changes to the environment variable
  /// have no effect on this process.
  static std::size_t requested_threads();
  /// Parses a CYCLOPS_THREADS-style string: the parsed value when
  /// `value` is a whole positive decimal integer, else `fallback`.
  /// (Pure; exposed so the parsing contract is unit-testable without
  /// mutating process state.)
  static std::size_t parse_thread_count(const char* value,
                                        std::size_t fallback) noexcept;

  /// Lifetime dispatch tallies (relaxed atomics; a handful of updates per
  /// run_chunked call, not per index).  util cannot depend on obs, so the
  /// pool keeps raw counters and obs::record_thread_pool() snapshots them
  /// into a Registry.
  struct Stats {
    std::uint64_t jobs = 0;           ///< run_chunked calls with n > 0
    std::uint64_t inline_jobs = 0;    ///< ran entirely on the caller
    std::uint64_t parallel_jobs = 0;  ///< fanned out to workers
    std::uint64_t chunks = 0;         ///< chunks dispatched across all jobs
    std::uint64_t wait_us = 0;  ///< submitter wall time blocked on cv_done_
  };
  Stats stats() const noexcept;

  /// While alive, every run_chunked() issued from this thread executes
  /// inline regardless of the pool it targets.
  class SerialScope {
   public:
    SerialScope();
    ~SerialScope();
    SerialScope(const SerialScope&) = delete;
    SerialScope& operator=(const SerialScope&) = delete;
  };

 private:
  void worker_main(std::size_t worker_index);
  /// Pulls chunks off next_chunk_ and runs them until the job drains.
  void drain_chunks(std::size_t n, std::size_t chunks, const ChunkBody& body);

  std::vector<std::thread> workers_;

  // Job hand-off state, all guarded by mu_.
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const ChunkBody* body_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunks_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  /// Next undispatched chunk of the in-flight job (the dispenser).
  std::atomic<std::size_t> next_chunk_{0};

  // Serializes concurrent submitters so one job is in flight at a time.
  std::mutex submit_mu_;

  // Stats (relaxed; see Stats).
  std::atomic<std::uint64_t> stat_jobs_{0};
  std::atomic<std::uint64_t> stat_inline_jobs_{0};
  std::atomic<std::uint64_t> stat_parallel_jobs_{0};
  std::atomic<std::uint64_t> stat_chunks_{0};
  std::atomic<std::uint64_t> stat_wait_us_{0};
};

/// `fn(i)` for every i in [0, n), statically chunked over `pool`.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn,
                  ThreadPool& pool = ThreadPool::global()) {
  pool.run_chunked(n, [&fn](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// `out[i] = fn(i)` for every i in [0, n); each iteration writes only its
/// own slot, so the result is identical at any thread count.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn,
                            ThreadPool& pool = ThreadPool::global()) {
  std::vector<T> out(n);
  pool.run_chunked(n, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

}  // namespace cyclops::util

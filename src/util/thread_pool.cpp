#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

namespace cyclops::util {
namespace {

// True while the current thread is executing a pool chunk (nested
// dispatch must run inline to avoid deadlocking the fixed worker set) or
// holds an active SerialScope.
thread_local int tl_inline_depth = 0;

}  // namespace

ThreadPool::SerialScope::SerialScope() { ++tl_inline_depth; }
ThreadPool::SerialScope::~SerialScope() { --tl_inline_depth; }

std::size_t ThreadPool::parse_thread_count(const char* value,
                                           std::size_t fallback) noexcept {
  if (value != nullptr) {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end != value && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return fallback;
}

std::size_t ThreadPool::requested_threads() {
  // Resolved exactly once; a getenv per pool construction was both wasted
  // work and a thread-safety hazard (getenv concurrent with setenv in
  // tests is a data race).
  static const std::size_t cached = parse_thread_count(
      std::getenv("CYCLOPS_THREADS"),
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  return cached;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = requested_threads();
  workers_.reserve(threads - 1);
  for (std::size_t w = 0; w + 1 < threads; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_range(std::size_t n,
                                                            std::size_t chunks,
                                                            std::size_t c) {
  const std::size_t q = n / chunks;
  const std::size_t r = n % chunks;
  const std::size_t begin = c * q + std::min(c, r);
  return {begin, begin + q + (c < r ? 1 : 0)};
}

void ThreadPool::run_chunked(std::size_t n, const ChunkBody& body) {
  run_chunked(n, thread_count(), body);
}

void ThreadPool::run_chunked(std::size_t n, std::size_t chunks,
                             const ChunkBody& body) {
  if (n == 0) return;
  chunks = std::max<std::size_t>(1, std::min(n, chunks));
  stat_jobs_.fetch_add(1, std::memory_order_relaxed);
  if (workers_.empty() || chunks == 1 || tl_inline_depth > 0) {
    stat_inline_jobs_.fetch_add(1, std::memory_order_relaxed);
    stat_chunks_.fetch_add(chunks, std::memory_order_relaxed);
    ++tl_inline_depth;
    // Inline execution still honors the chunk geometry: per-chunk scratch
    // (registry shards, output slots) must see the same chunk indices the
    // parallel path would use.
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = chunk_range(n, chunks, c);
      body(c, begin, end);
    }
    --tl_inline_depth;
    return;
  }
  stat_parallel_jobs_.fetch_add(1, std::memory_order_relaxed);
  stat_chunks_.fetch_add(chunks, std::memory_order_relaxed);

  std::lock_guard<std::mutex> submit(submit_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    job_n_ = n;
    job_chunks_ = chunks;
    remaining_ = workers_.size();
    next_chunk_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  cv_start_.notify_all();

  // The caller is executor 0; every executor pulls chunk indices from the
  // dispenser until it runs dry.
  ++tl_inline_depth;
  drain_chunks(n, chunks, body);
  --tl_inline_depth;

  const auto wait_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  body_ = nullptr;
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - wait_start);
  stat_wait_us_.fetch_add(static_cast<std::uint64_t>(waited.count()),
                          std::memory_order_relaxed);
}

void ThreadPool::drain_chunks(std::size_t n, std::size_t chunks,
                              const ChunkBody& body) {
  for (;;) {
    const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunks) return;
    const auto [begin, end] = chunk_range(n, chunks, c);
    body(c, begin, end);
  }
}

ThreadPool::Stats ThreadPool::stats() const noexcept {
  Stats s;
  s.jobs = stat_jobs_.load(std::memory_order_relaxed);
  s.inline_jobs = stat_inline_jobs_.load(std::memory_order_relaxed);
  s.parallel_jobs = stat_parallel_jobs_.load(std::memory_order_relaxed);
  s.chunks = stat_chunks_.load(std::memory_order_relaxed);
  s.wait_us = stat_wait_us_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::worker_main(std::size_t) {
  std::uint64_t seen = 0;
  for (;;) {
    const ChunkBody* body = nullptr;
    std::size_t n = 0;
    std::size_t chunks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      n = job_n_;
      chunks = job_chunks_;
    }
    ++tl_inline_depth;
    drain_chunks(n, chunks, *body);
    --tl_inline_depth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

ThreadPool& ThreadPool::serial() {
  static ThreadPool pool(1);
  return pool;
}

}  // namespace cyclops::util

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cyclops::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted_.size())));
  return sorted_[idx == 0 ? 0 : std::min(idx - 1, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Cdf::points(std::size_t n) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || n == 0) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q = static_cast<double>(i + 1) / static_cast<double>(n);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

}  // namespace cyclops::util

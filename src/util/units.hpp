// Unit conversions used throughout Cyclops.
//
// Conventions: distances in meters, angles in radians, power in dBm or
// milliwatts, time in seconds unless a suffix says otherwise.
#pragma once

#include <cmath>
#include <numbers>

namespace cyclops::util {

inline constexpr double kPi = std::numbers::pi;

/// Degrees -> radians.
constexpr double deg_to_rad(double deg) noexcept { return deg * kPi / 180.0; }

/// Radians -> degrees.
constexpr double rad_to_deg(double rad) noexcept { return rad * 180.0 / kPi; }

/// Milliradians -> radians.
constexpr double mrad_to_rad(double mrad) noexcept { return mrad * 1e-3; }

/// Radians -> milliradians.
constexpr double rad_to_mrad(double rad) noexcept { return rad * 1e3; }

/// Millimeters -> meters.
constexpr double mm_to_m(double mm) noexcept { return mm * 1e-3; }

/// Meters -> millimeters.
constexpr double m_to_mm(double m) noexcept { return m * 1e3; }

/// Power in dBm -> milliwatts.
inline double dbm_to_mw(double dbm) noexcept { return std::pow(10.0, dbm / 10.0); }

/// Power in milliwatts -> dBm.
inline double mw_to_dbm(double mw) noexcept { return 10.0 * std::log10(mw); }

/// Dimensionless linear power ratio -> decibels.
inline double ratio_to_db(double ratio) noexcept { return 10.0 * std::log10(ratio); }

/// Decibels -> dimensionless linear power ratio.
inline double db_to_ratio(double db) noexcept { return std::pow(10.0, db / 10.0); }

/// Gigabits-per-second -> bits-per-second.
constexpr double gbps_to_bps(double gbps) noexcept { return gbps * 1e9; }

/// Bits-per-second -> gigabits-per-second.
constexpr double bps_to_gbps(double bps) noexcept { return bps * 1e-9; }

}  // namespace cyclops::util

// Descriptive statistics and empirical CDFs for the evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cyclops::util {

/// Running mean / min / max / stddev accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs) noexcept;
double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile; p in [0, 100].  Copies and sorts.
double percentile(std::span<const double> xs, double p);

/// Empirical cumulative distribution function over a sample.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  double at(double x) const noexcept;

  /// Smallest sample value v with at(v) >= q, q in (0, 1].
  double quantile(double q) const noexcept;

  std::size_t size() const noexcept { return sorted_.size(); }
  double min() const noexcept { return sorted_.empty() ? 0.0 : sorted_.front(); }
  double max() const noexcept { return sorted_.empty() ? 0.0 : sorted_.back(); }

  /// Evenly spaced (value, cumulative fraction) points for plotting/printing.
  std::vector<std::pair<double, double>> points(std::size_t n) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace cyclops::util

#include "util/json_writer.hpp"

#include <cstdio>

namespace cyclops::util {

std::string json_number(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), kJsonNumberFormat, v);
  return buffer;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
}

void JsonWriter::key(std::string_view name) {
  if (!first_) out_.push_back(',');
  first_ = false;
  out_.push_back('"');
  append_json_escaped(out_, name);
  out_ += "\":";
}

void JsonWriter::field(std::string_view name, double value) {
  key(name);
  out_ += json_number(value);
}

void JsonWriter::field(std::string_view name, std::int64_t value) {
  key(name);
  out_ += std::to_string(value);
}

void JsonWriter::field(std::string_view name, std::uint64_t value) {
  key(name);
  out_ += std::to_string(value);
}

void JsonWriter::field(std::string_view name, std::string_view value) {
  key(name);
  out_.push_back('"');
  append_json_escaped(out_, value);
  out_.push_back('"');
}

void JsonWriter::raw_field(std::string_view name, std::string_view json) {
  key(name);
  out_ += json;
}

}  // namespace cyclops::util

#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cyclops::util {
namespace {

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

bool parse_double(const std::string& s, double& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

void write_csv(const std::filesystem::path& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path.string());
  out.precision(12);
  if (!header.empty()) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (i > 0) out << ',';
      out << header[i];
    }
    out << '\n';
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

CsvTable read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path.string());
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.back() == '\r') line.pop_back();
    const auto fields = split_fields(line);
    std::vector<double> row;
    row.reserve(fields.size());
    bool numeric = true;
    for (const auto& f : fields) {
      double v = 0.0;
      if (!parse_double(f, v)) {
        numeric = false;
        break;
      }
      row.push_back(v);
    }
    if (first && !numeric) {
      table.header = fields;
    } else if (numeric) {
      table.rows.push_back(std::move(row));
    } else {
      throw std::runtime_error("non-numeric row in " + path.string());
    }
    first = false;
  }
  return table;
}

}  // namespace cyclops::util

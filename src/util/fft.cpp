#include "util/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cyclops::util {

void fft(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft: size must be 2^k");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

void fft2(std::vector<Complex>& data, std::size_t n, bool inverse) {
  if (data.size() != n * n) throw std::invalid_argument("fft2: bad size");
  std::vector<Complex> scratch(n);
  // Rows.
  for (std::size_t r = 0; r < n; ++r) {
    std::copy(data.begin() + static_cast<long>(r * n),
              data.begin() + static_cast<long>((r + 1) * n), scratch.begin());
    fft(scratch, inverse);
    std::copy(scratch.begin(), scratch.end(),
              data.begin() + static_cast<long>(r * n));
  }
  // Columns.
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r < n; ++r) scratch[r] = data[r * n + c];
    fft(scratch, inverse);
    for (std::size_t r = 0; r < n; ++r) data[r * n + c] = scratch[r];
  }
}

}  // namespace cyclops::util

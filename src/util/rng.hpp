// Deterministic random number generation.
//
// Cyclops simulations must be reproducible run-to-run, so every stochastic
// component takes an explicit Rng (xoshiro256**) seeded by the caller
// instead of reaching for a global generator.
#pragma once

#include <cstdint>

namespace cyclops::util {

/// Complete serializable Rng state: the four xoshiro words plus the
/// Box-Muller cache.  Restoring it reproduces the stream bit-for-bit,
/// which is what lets the calibration engine checkpoint mid-run
/// (cal/checkpoint) without perturbing a single draw.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// Small, fast, splittable PRNG (xoshiro256**).  Satisfies the needs of the
/// simulator: uniform doubles, Gaussians, and integer ranges.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Rebuilds a generator mid-stream from a saved state.
  static Rng from_state(const RngState& state) noexcept;

  /// Snapshot of the full generator state (pure; does not advance).
  RngState state() const noexcept;

  /// Raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// A new independent generator derived from this one's stream.
  Rng split() noexcept;

  /// Keyed split: a child generator that is a pure function of (current
  /// state, key) — it does NOT advance this generator.  Deriving child i
  /// via split(i) makes per-item streams identical regardless of the order
  /// (or thread) in which items are processed.
  Rng split(std::uint64_t key) const noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cyclops::util

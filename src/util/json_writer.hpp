// Minimal JSON emission shared by every JSON-producing path in the tree
// (util::write_bench_json, event::JsonlTraceWriter, obs exporters), so the
// number format and string escaping stay identical and diffable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cyclops::util {

/// printf format for JSON numbers: round-trips every double exactly.
inline constexpr const char* kJsonNumberFormat = "%.17g";

/// `v` rendered with kJsonNumberFormat.
std::string json_number(double v);

/// Appends `s` with JSON string escaping (quote, backslash, control
/// characters as \u00XX) — no surrounding quotes.
void append_json_escaped(std::string& out, std::string_view s);

/// Builds one flat JSON object into a string:
///   JsonWriter w; w.begin(); w.field("a", 1.5); w.end(); w.str();
/// Fields appear in call order; string values are escaped; raw_field
/// splices pre-rendered JSON (arrays, nested objects) verbatim.
class JsonWriter {
 public:
  void begin() {
    out_.push_back('{');
    first_ = true;
  }
  void end() { out_.push_back('}'); }

  void field(std::string_view name, double value);
  void field(std::string_view name, std::int64_t value);
  void field(std::string_view name, std::uint64_t value);
  void field(std::string_view name, std::string_view value);
  void raw_field(std::string_view name, std::string_view json);

  const std::string& str() const noexcept { return out_; }
  void clear() {
    out_.clear();
    first_ = true;
  }

 private:
  void key(std::string_view name);

  std::string out_;
  bool first_ = true;
};

}  // namespace cyclops::util

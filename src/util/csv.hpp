// Minimal CSV reading/writing for traces and benchmark output.
//
// Only what Cyclops needs: numeric tables with an optional header row.
// Fields never contain commas or quotes, so no escaping is implemented.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace cyclops::util {

/// A parsed CSV file: header names (possibly empty) plus numeric rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

/// Writes rows of doubles with the given header.  Throws std::runtime_error
/// on I/O failure.
void write_csv(const std::filesystem::path& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows);

/// Reads a CSV file written by write_csv (or of the same shape).
/// If the first row contains any non-numeric field it is treated as a header.
/// Throws std::runtime_error on I/O or parse failure.
CsvTable read_csv(const std::filesystem::path& path);

}  // namespace cyclops::util

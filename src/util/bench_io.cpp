#include "util/bench_io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "util/thread_pool.hpp"

#ifndef CYCLOPS_GIT_REV
#define CYCLOPS_GIT_REV "unknown"
#endif

namespace cyclops::util {

std::string sanitized_git_rev(const char* raw) {
  if (raw == nullptr) return "unknown";
  const std::string rev(raw);
  if (rev.size() < 4 || rev.size() > 40) return "unknown";
  for (const char c : rev) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                     (c >= 'A' && c <= 'F');
    if (!hex) return "unknown";
  }
  return rev;
}

std::size_t host_nproc() {
  return static_cast<std::size_t>(std::thread::hardware_concurrency());
}

std::string cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    std::size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    std::string model = line.substr(start);
    // JSON-safe: the value is emitted inside a quoted string.
    for (char& c : model) {
      if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
        c = ' ';
      }
    }
    if (!model.empty()) return model;
    break;
  }
  return "unknown";
}

void write_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& fields) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "write_bench_json: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"name\": \"%s\"", name.c_str());
  std::fprintf(f, ",\n  \"schema_version\": %d", kBenchSchemaVersion);
  std::fprintf(f, ",\n  \"threads\": %zu", ThreadPool::requested_threads());
  std::fprintf(f, ",\n  \"git_rev\": \"%s\"",
               sanitized_git_rev(CYCLOPS_GIT_REV).c_str());
  std::fprintf(f, ",\n  \"host_nproc\": %zu", host_nproc());
  std::fprintf(f, ",\n  \"cpu_model\": \"%s\"", cpu_model().c_str());
  for (const auto& [key, value] : fields) {
    std::fprintf(f, ",\n  \"%s\": %s", key.c_str(),
                 json_number(value).c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("[bench] wrote %s\n", path.c_str());
}

}  // namespace cyclops::util

#include "util/bench_io.hpp"

#include <cstdio>

#include "util/thread_pool.hpp"

#ifndef CYCLOPS_GIT_REV
#define CYCLOPS_GIT_REV "unknown"
#endif

namespace cyclops::util {

std::string sanitized_git_rev(const char* raw) {
  if (raw == nullptr) return "unknown";
  const std::string rev(raw);
  if (rev.size() < 4 || rev.size() > 40) return "unknown";
  for (const char c : rev) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                     (c >= 'A' && c <= 'F');
    if (!hex) return "unknown";
  }
  return rev;
}

void write_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& fields) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "write_bench_json: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"name\": \"%s\"", name.c_str());
  std::fprintf(f, ",\n  \"schema_version\": %d", kBenchSchemaVersion);
  std::fprintf(f, ",\n  \"threads\": %zu", ThreadPool::requested_threads());
  std::fprintf(f, ",\n  \"git_rev\": \"%s\"",
               sanitized_git_rev(CYCLOPS_GIT_REV).c_str());
  for (const auto& [key, value] : fields) {
    std::fprintf(f, ",\n  \"%s\": %s", key.c_str(),
                 json_number(value).c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("[bench] wrote %s\n", path.c_str());
}

}  // namespace cyclops::util

#include "util/bench_io.hpp"

#include <cstdio>

#include "util/thread_pool.hpp"

#ifndef CYCLOPS_GIT_REV
#define CYCLOPS_GIT_REV "unknown"
#endif

namespace cyclops::util {

void write_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& fields) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "write_bench_json: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"name\": \"%s\"", name.c_str());
  std::fprintf(f, ",\n  \"schema_version\": %d", kBenchSchemaVersion);
  std::fprintf(f, ",\n  \"threads\": %zu", ThreadPool::env_thread_count());
  std::fprintf(f, ",\n  \"git_rev\": \"%s\"", CYCLOPS_GIT_REV);
  for (const auto& [key, value] : fields) {
    std::fprintf(f, ",\n  \"%s\": %s", key.c_str(),
                 json_number(value).c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("[bench] wrote %s\n", path.c_str());
}

}  // namespace cyclops::util

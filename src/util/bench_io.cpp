#include "util/bench_io.hpp"

#include <cstdio>

namespace cyclops::util {

void write_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& fields) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "write_bench_json: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"name\": \"%s\"", name.c_str());
  for (const auto& [key, value] : fields) {
    std::fprintf(f, ",\n  \"%s\": ", key.c_str());
    std::fprintf(f, kJsonNumberFormat, value);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("[bench] wrote %s\n", path.c_str());
}

}  // namespace cyclops::util

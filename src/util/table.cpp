#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cyclops::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace cyclops::util

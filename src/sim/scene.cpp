#include "sim/scene.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cyclops::sim {

Scene::Scene(SceneConfig config, galvo::GmaPhysical tx,
             galvo::GmaPhysical rx_in_rig, geom::Pose rig_pose)
    : config_(std::move(config)),
      tx_(std::move(tx)),
      rx_in_rig_(std::move(rx_in_rig)),
      rig_pose_(std::move(rig_pose)) {}

galvo::GmaPhysical Scene::rx_world() const {
  galvo::GmaPhysical rx = rx_in_rig_;
  rx.set_mount(rig_pose_ * rx_in_rig_.mount());
  return rx;
}

bool Scene::segment_occluded(const geom::Vec3& a, const geom::Vec3& b) const {
  const geom::Vec3 d = b - a;
  const double len = d.norm();
  if (len < 1e-12) return false;
  const geom::Vec3 dir = d / len;
  for (const auto& o : occluders_) {
    const double t = std::clamp((o.center - a).dot(dir), 0.0, len);
    if (geom::distance(a + dir * t, o.center) <= o.radius) return true;
  }
  return false;
}

LinkObservation Scene::observe(const Voltages& v) const {
  LinkObservation obs;

  const auto beam = tx_.emit(v.tx1, v.tx2, config_.design.beam);
  const auto capture = rx_world().capture_ray(v.rx1, v.rx2);
  if (!beam || !capture) {
    obs.power = optics::compute_power(config_.sfp, config_.amplifier, {}, false);
    obs.power.rx_power_dbm = -std::numeric_limits<double>::infinity();
    return obs;
  }

  const geom::Vec3 capture_point = capture->origin;
  const geom::Vec3 accept_dir = capture->dir;

  // The beam must travel toward the capture point, not away from it.
  const geom::Vec3 to_capture = capture_point - beam->chief.origin;
  obs.range = to_capture.norm();
  if (to_capture.dot(beam->chief.dir) <= 0.0) {
    obs.power.rx_power_dbm = -std::numeric_limits<double>::infinity();
    return obs;
  }
  obs.beam_valid = true;

  obs.occluded = segment_occluded(beam->chief.origin, capture_point);
  obs.delta_r = beam->envelope_offset(capture_point);
  obs.psi = geom::angle_between(beam->arriving_dir_at(capture_point),
                                -accept_dir);
  obs.envelope_diameter = beam->envelope_diameter_at(capture_point);

  const auto coupling =
      optics::coupling_loss(config_.design.receiver, *beam, capture_point,
                            accept_dir);
  obs.power = optics::compute_power(config_.sfp, config_.amplifier, coupling,
                                    obs.occluded);
  return obs;
}

optics::QuadReading Scene::photodiodes(const Voltages& v) const {
  const auto beam = tx_.emit(v.tx1, v.tx2, config_.design.beam);
  if (!beam) return {};
  // The quad array sits around the RX capture aperture (mirror 2 of the
  // RX GM), facing along the rig's boresight.
  const galvo::GmaPhysical rx = rx_world();
  const geom::Pose diode_pose = rx.mount();
  optics::QuadPhotodiode quad(diode_pose, config_.photodiode_arm_radius);
  if (segment_occluded(beam->chief.origin, diode_pose.translation())) return {};
  return quad.read(*beam);
}

}  // namespace cyclops::sim

#include "sim/prototype.hpp"

#include "util/units.hpp"

namespace cyclops::sim {
namespace {

geom::Pose random_small_pose(util::Rng& rng, double pos_sigma,
                             double angle_sigma) {
  const geom::Vec3 axis =
      geom::Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
  const double angle = rng.normal(0.0, angle_sigma);
  const geom::Vec3 t{rng.normal(0.0, pos_sigma), rng.normal(0.0, pos_sigma),
                     rng.normal(0.0, pos_sigma)};
  return {geom::Mat3::rotation(axis, angle), t};
}

/// Pose whose rotation maps local -z onto `boresight` (unit).
geom::Mat3 boresight_rotation(const geom::Vec3& boresight) {
  return geom::Mat3::rotation_between({0.0, 0.0, -1.0}, boresight);
}

}  // namespace

void Prototype::apply_rig_flex(util::Rng& rng) {
  const geom::Pose flex = random_small_pose(
      rng, config.rig_flex_position_sigma, config.rig_flex_angle_sigma);
  scene.set_rx_mount_in_rig(rx_mount_in_rig * flex);
}

PrototypeConfig prototype_10g_config() {
  PrototypeConfig cfg;
  cfg.design = optics::diverging_10g(20e-3, 1.75);
  cfg.sfp = optics::sfp_10g_zr();
  cfg.amplifier = optics::Edfa{};
  return cfg;
}

PrototypeConfig prototype_25g_config() {
  PrototypeConfig cfg;
  cfg.design = optics::diverging_25g(14e-3, 1.75);
  cfg.sfp = optics::sfp28_lr();
  cfg.amplifier = optics::Edfa{};  // no gain at 1310 nm
  return cfg;
}

Prototype make_prototype(std::uint64_t seed, const PrototypeConfig& config) {
  util::Rng rng(seed);

  // Manufactured galvo units.
  const galvo::AssemblyTolerances tol;
  const galvo::GalvoParams nominal = galvo::nominal_params();
  const galvo::GalvoParams tx_truth = galvo::perturbed_params(nominal, tol, rng);
  const galvo::GalvoParams rx_truth = galvo::perturbed_params(nominal, tol, rng);
  const galvo::GalvoSpec spec = galvo::gvs102_spec();

  // K-space rigs: GMA roughly board_distance in front of the board plane
  // (z = 0), emitting toward -z, with placement error the experimenter
  // cannot avoid.
  const auto k_rig_pose = [&](util::Rng& r) {
    const geom::Pose nominal_pose{geom::Mat3::identity(),
                                  {0.0, 0.0, config.board_distance}};
    return nominal_pose * random_small_pose(r, 2e-3, util::deg_to_rad(0.5));
  };
  const geom::Pose k_from_tx = k_rig_pose(rng);
  const geom::Pose k_from_rx = k_rig_pose(rng);

  // World geometry.
  const geom::Vec3 to_rig =
      (config.rig_position - config.tx_position).normalized();
  const geom::Pose tx_mount{boresight_rotation(to_rig), config.tx_position};

  const geom::Vec3 rig_to_tx =
      (config.tx_position - config.rig_position).normalized();
  // Rig frame: +z looks at the TX from the nominal position.
  const geom::Pose rig_pose{
      geom::Mat3::rotation_between({0.0, 0.0, 1.0}, rig_to_tx),
      config.rig_position};

  // RX GMA on the breadboard: local -z points along rig +z (toward TX),
  // mounted slightly off the rig origin like the real breadboard.
  const geom::Pose rx_mount{
      boresight_rotation({0.0, 0.0, 1.0}),
      geom::Vec3{0.04, 0.06, 0.02}};

  // Hidden tracker frames: an arbitrary VR-space and an unknown point X
  // inside the headset.
  const geom::Pose vr_from_world =
      random_small_pose(rng, 0.8, util::deg_to_rad(25.0));
  const geom::Pose x_from_rig =
      geom::Pose{geom::Mat3::identity(), {0.0, 0.12, 0.08}} *
      random_small_pose(rng, 0.02, util::deg_to_rad(10.0));

  SceneConfig scene_config{config.design, config.sfp, config.amplifier,
                           15e-3};
  Scene scene(scene_config,
              galvo::GmaPhysical(galvo::GalvoMirror(tx_truth, spec), tx_mount),
              galvo::GmaPhysical(galvo::GalvoMirror(rx_truth, spec), rx_mount),
              rig_pose);

  tracking::VrhTracker tracker(config.tracker, vr_from_world, x_from_rig,
                               rng.split());

  Prototype proto{
      .scene_config = scene_config,
      .scene = std::move(scene),
      .tracker = std::move(tracker),
      .tx_galvo_truth = tx_truth,
      .rx_galvo_truth = rx_truth,
      .k_from_tx_gma = k_from_tx,
      .k_from_rx_gma = k_from_rx,
      .true_map_tx = vr_from_world * tx_mount * k_from_tx.inverse(),
      .true_map_rx = x_from_rig.inverse() * rx_mount * k_from_rx.inverse(),
      .vr_from_world = vr_from_world,
      .x_from_rig = x_from_rig,
      .nominal_rig_pose = rig_pose,
      .rx_mount_in_rig = rx_mount,
      .config = config};
  return proto;
}

}  // namespace cyclops::sim

// The physical world: TX assembly on the ceiling, RX assembly on the
// moving rig, and the light between them.
//
// Scene::observe is the single source of truth for "what power does the RX
// fiber see for these four GM voltages and this rig pose" — the TP
// pipeline, the exhaustive aligner, and every benchmark go through it.
#pragma once

#include <optional>
#include <vector>

#include "galvo/gma.hpp"
#include "geom/pose.hpp"
#include "optics/coupling.hpp"
#include "optics/link_budget.hpp"
#include "optics/photodiode.hpp"
#include "optics/sfp.hpp"

namespace cyclops::sim {

/// The four steering voltages <v1_tx, v2_tx, v1_rx, v2_rx> (§4).
struct Voltages {
  double tx1 = 0.0;
  double tx2 = 0.0;
  double rx1 = 0.0;
  double rx2 = 0.0;
};

/// Spherical occluder (a head, a raised hand) for LOS studies.
struct Occluder {
  geom::Vec3 center;
  double radius = 0.1;
};

/// Everything the physics says about one link configuration.
struct LinkObservation {
  optics::PowerReport power;
  /// Lateral envelope offset at the capture point (m).
  double delta_r = 0.0;
  /// Incidence-angle error at the capture point (rad).
  double psi = 0.0;
  /// Beam envelope diameter at the capture point (m).
  double envelope_diameter = 0.0;
  /// Straight-line TX-origin -> capture-point distance (m).
  double range = 0.0;
  /// False when a GM was clipped / out of range or the beam points away.
  bool beam_valid = false;
  bool occluded = false;
};

struct SceneConfig {
  optics::LinkDesign design;
  optics::SfpSpec sfp;
  optics::Edfa amplifier;
  double photodiode_arm_radius = 15e-3;
};

class Scene {
 public:
  /// `tx` is mounted in the world; `rx_mount_in_rig` places the RX GMA in
  /// the rig frame; `rig_pose` is the rig's world pose.
  Scene(SceneConfig config, galvo::GmaPhysical tx,
        galvo::GmaPhysical rx_in_rig, geom::Pose rig_pose);

  void set_rig_pose(const geom::Pose& pose) { rig_pose_ = pose; }
  const geom::Pose& rig_pose() const noexcept { return rig_pose_; }

  void set_tx_mount(const geom::Pose& pose) { tx_.set_mount(pose); }
  const galvo::GmaPhysical& tx() const noexcept { return tx_; }

  /// RX GMA placement within the rig (used to model breadboard flex).
  void set_rx_mount_in_rig(const geom::Pose& pose) { rx_in_rig_.set_mount(pose); }
  const galvo::GmaPhysical& rx_in_rig() const noexcept { return rx_in_rig_; }

  /// The RX GMA with its mount composed into the *world* for the current
  /// rig pose.
  galvo::GmaPhysical rx_world() const;

  const SceneConfig& config() const noexcept { return config_; }

  void add_occluder(const Occluder& o) { occluders_.push_back(o); }
  void clear_occluders() { occluders_.clear(); }

  /// Full physical trace for the given voltages at the current rig pose.
  LinkObservation observe(const Voltages& v) const;

  /// Received power shortcut (dBm; -inf when the beam is invalid).
  double received_power_dbm(const Voltages& v) const {
    return observe(v).power.rx_power_dbm;
  }

  /// Photodiode reading around the RX capture aperture for the TX beam
  /// launched by (tx1, tx2).  Returns zeros when the TX beam is invalid.
  optics::QuadReading photodiodes(const Voltages& v) const;

 private:
  SceneConfig config_;
  galvo::GmaPhysical tx_;
  galvo::GmaPhysical rx_in_rig_;
  geom::Pose rig_pose_;
  std::vector<Occluder> occluders_;

  bool segment_occluded(const geom::Vec3& a, const geom::Vec3& b) const;
};

}  // namespace cyclops::sim

// Assembles a complete Cyclops prototype rig with one seed:
// manufactured (perturbed) galvo units, K-space calibration rigs, the
// deployed scene geometry, the VRH tracker with its hidden frames, and —
// for evaluation only — the ground-truth mapping poses that Stage 2 is
// supposed to recover.
#pragma once

#include "galvo/factory.hpp"
#include "sim/scene.hpp"
#include "tracking/vrh_tracker.hpp"
#include "util/rng.hpp"

namespace cyclops::sim {

struct PrototypeConfig {
  optics::LinkDesign design;
  optics::SfpSpec sfp;
  optics::Edfa amplifier;
  /// Distance from the GMA to the calibration board in its K-space rig.
  double board_distance = 1.5;
  /// TX ceiling-mount position (world).
  geom::Vec3 tx_position{0.0, 2.2, 0.0};
  /// Nominal RX rig position (world) — head height.
  geom::Vec3 rig_position{0.0, 0.8, 1.2};
  /// Breadboard-flex jitter of the RX GMA inside the rig (models the
  /// paper's "RX-GMA relative position may not be perfectly fixed").
  double rig_flex_position_sigma = 0.5e-3;
  double rig_flex_angle_sigma = 1.0e-3;
  tracking::TrackerConfig tracker;
};

struct Prototype {
  SceneConfig scene_config;
  Scene scene;
  tracking::VrhTracker tracker;

  // --- Ground truth, for sample generation and evaluation only. ---
  galvo::GalvoParams tx_galvo_truth;
  galvo::GalvoParams rx_galvo_truth;
  /// Pose of each GMA in its K-space calibration rig (local -> K).
  geom::Pose k_from_tx_gma;
  geom::Pose k_from_rx_gma;
  /// True Stage-2 mapping parameters: K_tx -> VR-space and K_rx -> X-frame.
  geom::Pose true_map_tx;
  geom::Pose true_map_rx;
  /// Hidden tracker frames.
  geom::Pose vr_from_world;
  geom::Pose x_from_rig;
  geom::Pose nominal_rig_pose;
  /// Baseline RX mount inside the rig (before flex).
  geom::Pose rx_mount_in_rig;

  PrototypeConfig config;

  /// Re-jitters the RX GMA mount slightly around its baseline (breadboard
  /// flex between calibration samples).
  void apply_rig_flex(util::Rng& rng);
};

/// Builds a prototype with the 10G diverging design by default.
Prototype make_prototype(std::uint64_t seed, const PrototypeConfig& config);

/// Convenience configs matching the paper's two prototypes.
PrototypeConfig prototype_10g_config();
PrototypeConfig prototype_25g_config();

}  // namespace cyclops::sim

#include "optics/link_budget.hpp"

#include <limits>

namespace cyclops::optics {

PowerReport compute_power(const SfpSpec& sfp, const Edfa& amp,
                          const CouplingResult& coupling, bool blocked) {
  PowerReport report;
  report.tx_power_dbm = sfp.tx_power_dbm;
  report.amplifier_gain_db = amp.gain_for(sfp.wavelength_nm);
  report.coupling = coupling;
  report.blocked = blocked;
  if (blocked) {
    report.rx_power_dbm = -std::numeric_limits<double>::infinity();
  } else {
    report.rx_power_dbm = report.tx_power_dbm + report.amplifier_gain_db -
                          coupling.total_db();
  }
  return report;
}

}  // namespace cyclops::optics

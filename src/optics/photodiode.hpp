// Quadrant photodiode array around the receive aperture.
//
// The prototype surrounds the RX collimator with four photodiodes wired to
// a DAQ (as in FSONet [32]) to monitor received power during the
// exhaustive-search alignment.  Each diode samples the local envelope
// intensity; their sum is a coarse power proxy and their differences give
// a lateral error signal the aligner can hill-climb on.
#pragma once

#include <array>

#include "geom/pose.hpp"
#include "optics/beam.hpp"

namespace cyclops::optics {

struct QuadReading {
  /// Diode currents, arbitrary linear units: +x, -x, +y, -y positions.
  std::array<double, 4> currents{};

  double sum() const noexcept {
    return currents[0] + currents[1] + currents[2] + currents[3];
  }
  /// Normalized lateral error estimates in the diode plane, in [-1, 1].
  double error_x() const noexcept;
  double error_y() const noexcept;
};

class QuadPhotodiode {
 public:
  /// `center_pose` maps diode-local coordinates (diodes on the local x/y
  /// axes at `arm_radius`, plane normal = local +z) into the world.
  QuadPhotodiode(geom::Pose center_pose, double arm_radius);

  /// Samples the beam's envelope intensity at the four diode positions.
  QuadReading read(const TracedBeam& beam) const;

  void set_pose(const geom::Pose& pose) { pose_ = pose; }
  const geom::Pose& pose() const { return pose_; }

 private:
  geom::Pose pose_;
  double arm_radius_;
};

}  // namespace cyclops::optics

// Multi-wavelength (WDM) transceivers — the §6 path to 40G+ links.
//
// "For higher-bandwidth (40Gbps+) links, our designed TP mechanism
//  remains unchanged; however, the link would likely need customized
//  collimators that can efficiently capture a range of wavelengths
//  because the high-bandwidth single-strand transceivers use multiple
//  wavelengths [12, 13]."
//
// This module models exactly that: an LR4-style transceiver with four
// lanes spread over ~60 nm, and a receive collimator whose chromatic
// focal shift penalizes lanes away from its design wavelength — unless it
// is an achromatic ("custom") design.
#pragma once

#include <string>
#include <vector>

#include "optics/coupling.hpp"
#include "optics/sfp.hpp"

namespace cyclops::optics {

struct WdmLane {
  double wavelength_nm = 1310.0;
  double rate_gbps = 10.0;
  double tx_power_dbm = 0.0;
  double rx_sensitivity_dbm = -13.0;
};

struct WdmTransceiver {
  std::string name;
  std::vector<WdmLane> lanes;

  double total_rate_gbps() const {
    double sum = 0.0;
    for (const auto& lane : lanes) sum += lane.rate_gbps;
    return sum;
  }
};

/// 40GBASE-LR4: 4 x 10.3 G on the 1295-1310 nm CWDM-ish grid (modeled on
/// the LAN-WDM 1271/1291/1311/1331 spacing for a clearer chromatic spread).
WdmTransceiver qsfp_lr4();

/// 100GBASE-LR4: 4 x 25.8 G, same grid.
WdmTransceiver qsfp28_lr4();

struct CollimatorChromatics {
  /// Wavelength the collimator focuses perfectly (nm).
  double design_wavelength_nm = 1301.0;
  /// Loss per lane: coefficient * (delta_lambda / 30 nm)^2 dB.
  /// A commodity singlet runs ~2 dB at 30 nm; an achromatic "custom"
  /// collimator (§6) is ~0.1 dB.
  double chromatic_coefficient_db = 2.0;

  double penalty_db(double wavelength_nm) const noexcept {
    const double d = (wavelength_nm - design_wavelength_nm) / 30.0;
    return chromatic_coefficient_db * d * d;
  }
};

inline CollimatorChromatics commodity_collimator() { return {1301.0, 2.0}; }
inline CollimatorChromatics custom_achromatic_collimator() {
  return {1301.0, 0.1};
}

struct WdmLaneReport {
  double wavelength_nm = 0.0;
  double rx_power_dbm = 0.0;
  double margin_db = 0.0;
  bool up = false;
  double rate_gbps = 0.0;
};

struct WdmLinkReport {
  std::vector<WdmLaneReport> lanes;
  double aggregate_rate_gbps = 0.0;
  int lanes_up = 0;
};

/// Per-lane link budget: shared geometric/misalignment coupling loss
/// (from the beam geometry) plus the lane's chromatic penalty.
WdmLinkReport evaluate_wdm_link(const WdmTransceiver& transceiver,
                                const CollimatorChromatics& collimator,
                                double shared_coupling_loss_db);

}  // namespace cyclops::optics

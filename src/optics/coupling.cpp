#include "optics/coupling.hpp"

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace cyclops::optics {
namespace {

// 10 * log10(e) * 2 : converts the Gaussian exponent 2*(x/w)^2 to dB.
constexpr double kGaussDb = 8.685889638065035;

}  // namespace

double effective_theta_acc(const ReceiverDesign& rx, double delta) noexcept {
  const double inner = std::sqrt(
      rx.fiber_theta * rx.fiber_theta +
      rx.divergence_accept_factor * rx.divergence_accept_factor * delta * delta);
  // Saturating combination: the lens NA caps how steep a ray can still be
  // focused onto the fiber, however wide the arriving cone is.
  return rx.theta_sat * std::tanh(inner / rx.theta_sat);
}

CouplingResult coupling_loss_from_errors(const ReceiverDesign& rx,
                                         double envelope_diameter,
                                         double local_divergence,
                                         double tail_factor, double delta_r,
                                         double psi) {
  CouplingResult result;

  // Geometric capture: fraction of the (Gaussian-profiled) envelope inside
  // the capture aperture when centered.
  const double w = std::max(envelope_diameter * 0.5, 1e-6);
  const double a = rx.capture_radius;
  const double captured = 1.0 - std::exp(-8.0 * a * a /
                                         (envelope_diameter * envelope_diameter +
                                          1e-12));
  result.geometric_db = -util::ratio_to_db(std::max(captured, 1e-12));

  // Lateral envelope misalignment.
  const double w_lat = std::max(tail_factor * w, 1e-6);
  result.lateral_db = kGaussDb * (delta_r / w_lat) * (delta_r / w_lat);

  // Incidence-angle misalignment.
  const double theta_acc = effective_theta_acc(rx, local_divergence);
  result.angular_db = kGaussDb * (psi / theta_acc) * (psi / theta_acc);

  result.fixed_db = rx.mode_mismatch_db + rx.insertion_db;
  return result;
}

CouplingResult coupling_loss(const ReceiverDesign& rx, const TracedBeam& beam,
                             const geom::Vec3& capture_point,
                             const geom::Vec3& accept_dir) {
  const double diameter = beam.envelope_diameter_at(capture_point);
  const double delta_r = beam.envelope_offset(capture_point);
  const geom::Vec3 arriving = beam.arriving_dir_at(capture_point);
  // Aligned means the arriving ray points opposite to the acceptance axis
  // (the acceptance axis looks back toward the TX).
  const double psi = geom::angle_between(arriving, -accept_dir);
  return coupling_loss_from_errors(rx, diameter,
                                   beam.local_divergence_at(capture_point),
                                   beam.spec.tail_factor, delta_r, psi);
}

// ---------------------------------------------------------------------------
// Calibrated presets.
//
// Derivations (all at the 1.5 m nominal range, EDFA +17 dB on the 10G
// designs, SFP specs from optics/sfp.hpp):
//
//  * diverging_10g(20mm): capture 5 mm (GM clear aperture) -> geometric
//    4.05 dB; mode mismatch 21.45 dB + insertion 1.5 dB gives peak
//    0 + 17 - 4.05 - 22.95 = -10 dBm (Table 1).  theta_sat 4.4 mrad &
//    divergence_accept_factor 1.9 give an effective acceptance 4.35 mrad at
//    a 6 mrad half-angle cone -> RX tolerance sqrt(15/8.686)*4.35 =
//    5.7 mrad; tail_factor 1.8 -> w_lat 18 mm -> TX tolerance
//    1.314*18mm/1.5m = 15.8 mrad (Table 1: 15.81 / 5.77 / -10 dBm).
//  * collimated_10g(20mm): beam expander shrinks the beam into the
//    collimator -> capture radius 10 mm, no mode mismatch; peak
//    0 + 17 - 0.63 - 1.5 = +14.9 dBm; RX tolerance 1.06 mrad *
//    sqrt(39.9/8.686) = 2.27 mrad; TX tolerance combines the lateral and
//    angular terms -> 2.2 mrad (Table 1: 2.00 / 2.28 / +15 dBm).
//  * diverging_25g(14mm): adjustable-focus collimators at both ends:
//    small mode mismatch (4.5 dB) and a wide NA (theta_sat 10 mrad,
//    divergence_accept_factor 4.0) but no EDFA at 1310 nm -> peak
//    2 - 1.94 - 6.0 = -5.9 dBm over a -14 dBm sensitivity; RX tolerance
//    ~0.96*9.2 = 8.8 mrad, TX ~8.7 mrad, lateral ~6-9 mm (§5.3.1:
//    8.73 mrad / 8-9 mrad / ~6 mm).
// ---------------------------------------------------------------------------

LinkDesign collimated_10g(double beam_diameter) {
  LinkDesign design;
  design.beam = BeamSpec::collimated(beam_diameter, /*tail_factor=*/1.0);
  design.receiver = {.capture_radius = 10e-3,
                     .fiber_theta = 1.06e-3,
                     .divergence_accept_factor = 1.9,
                     .theta_sat = 4.4e-3,
                     .mode_mismatch_db = 0.0,
                     .insertion_db = 1.5};
  return design;
}

LinkDesign diverging_10g(double rx_diameter, double range) {
  LinkDesign design;
  design.beam = BeamSpec::diverging_for(rx_diameter, range,
                                        /*launch_diameter=*/2e-3,
                                        /*tail_factor=*/1.8);
  design.receiver = {.capture_radius = 5e-3,
                     .fiber_theta = 1.06e-3,
                     .divergence_accept_factor = 1.9,
                     .theta_sat = 4.4e-3,
                     .mode_mismatch_db = 21.45,
                     .insertion_db = 1.5};
  design.nominal_range = range;
  return design;
}

LinkDesign diverging_25g(double rx_diameter, double range) {
  LinkDesign design;
  design.beam = BeamSpec::diverging_for(rx_diameter, range,
                                        /*launch_diameter=*/2e-3,
                                        /*tail_factor=*/1.6);
  // Thin margin by design: the SFP28-LR budget is only ~16 dB and there
  // is no EDFA at 1310 nm, so the link lives ~5 dB above sensitivity at
  // peak — which is why the paper's 25G prototype tolerates *lower*
  // linear speeds than the 10G one despite its better angular acceptance.
  design.receiver = {.capture_radius = 5e-3,
                     .fiber_theta = 1.2e-3,
                     .divergence_accept_factor = 4.0,
                     .theta_sat = 12e-3,
                     .mode_mismatch_db = 7.5,
                     .insertion_db = 1.5};
  design.nominal_range = range;
  return design;
}

}  // namespace cyclops::optics

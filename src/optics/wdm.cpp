#include "optics/wdm.hpp"

namespace cyclops::optics {

WdmTransceiver qsfp_lr4() {
  WdmTransceiver t;
  t.name = "QSFP-40G-LR4";
  for (double wl : {1271.0, 1291.0, 1311.0, 1331.0}) {
    t.lanes.push_back({wl, 10.3, 1.0, -13.0});
  }
  return t;
}

WdmTransceiver qsfp28_lr4() {
  WdmTransceiver t;
  t.name = "QSFP28-100G-LR4";
  for (double wl : {1271.0, 1291.0, 1311.0, 1331.0}) {
    t.lanes.push_back({wl, 25.8, 2.0, -10.5});
  }
  return t;
}

WdmLinkReport evaluate_wdm_link(const WdmTransceiver& transceiver,
                                const CollimatorChromatics& collimator,
                                double shared_coupling_loss_db) {
  WdmLinkReport report;
  report.lanes.reserve(transceiver.lanes.size());
  for (const auto& lane : transceiver.lanes) {
    WdmLaneReport r;
    r.wavelength_nm = lane.wavelength_nm;
    r.rx_power_dbm = lane.tx_power_dbm - shared_coupling_loss_db -
                     collimator.penalty_db(lane.wavelength_nm);
    r.margin_db = r.rx_power_dbm - lane.rx_sensitivity_dbm;
    r.up = r.margin_db >= 0.0;
    r.rate_gbps = r.up ? lane.rate_gbps : 0.0;
    if (r.up) {
      ++report.lanes_up;
      report.aggregate_rate_gbps += lane.rate_gbps;
    }
    report.lanes.push_back(r);
  }
  return report;
}

}  // namespace cyclops::optics

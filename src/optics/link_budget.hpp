// End-to-end power accounting for one FSO hop.
#pragma once

#include "optics/coupling.hpp"
#include "optics/sfp.hpp"

namespace cyclops::optics {

struct PowerReport {
  double tx_power_dbm = 0.0;
  double amplifier_gain_db = 0.0;
  CouplingResult coupling;
  /// Received power coupled into the RX fiber, dBm.  -infinity when the
  /// path is blocked.
  double rx_power_dbm = 0.0;
  bool blocked = false;

  double margin_db(const SfpSpec& sfp) const noexcept {
    return rx_power_dbm - sfp.rx_sensitivity_dbm;
  }
};

/// Combines transmit power, amplifier, and coupling losses.
PowerReport compute_power(const SfpSpec& sfp, const Edfa& amp,
                          const CouplingResult& coupling, bool blocked);

/// True when the coupled power meets the receiver sensitivity.
inline bool link_usable(const PowerReport& report, const SfpSpec& sfp) {
  return !report.blocked && report.rx_power_dbm >= sfp.rx_sensitivity_dbm;
}

}  // namespace cyclops::optics

// Receive-side coupling model: how much of the arriving beam makes it into
// the RX fiber, as a function of misalignment.
//
// The model reduces the full optical train (RX galvo mirror aperture ->
// collimator lens -> fiber facet) to two sufficient statistics of the
// arriving beam at the capture point:
//
//   delta_r : lateral offset between the beam's envelope axis and the
//             capture point (m).  Loss is Gaussian with scale
//             w_lat = tail_factor * envelope_radius  — a wide (diverging)
//             beam forgives lateral error.
//   psi     : angle between the ray arriving *at the capture point* and the
//             acceptance axis (rad).  Loss is Gaussian with scale
//             theta_acc, the angular acceptance.  An ideal thin lens maps
//             angle to focal-spot position (s = f * psi), so theta_acc is
//             set by the fiber core radius over the focal length — widened
//             when the arriving beam is itself a cone (its angular spread
//             pre-blurs the focal spot), and saturated by the lens NA.
//
// plus two fixed terms: geometric capture (envelope fraction inside the
// capture aperture) and a constant mode-mismatch/insertion loss.
//
// Calibration: constants in the presets below are chosen once so the 10G
// diverging design with a 20 mm beam at 1.5 m reproduces Table 1
// (TX tol 15.81 mrad / RX tol 5.77 mrad / peak -10 dBm vs the collimated
// 2.00 / 2.28 / +15), and are then *frozen*; Fig 11's interior optimum and
// the §5.3 speed limits are emergent, not fitted.
#pragma once

#include "optics/beam.hpp"

namespace cyclops::optics {

/// Receive-side optical design (collimator + capture aperture + fiber).
struct ReceiverDesign {
  /// Radius of the capture aperture (the RX galvo-mirror clear aperture for
  /// the Cyclops prototype: 10 mm beams allowed -> 5 mm radius).
  double capture_radius = 5e-3;
  /// Base angular acceptance from the fiber: core radius / focal length.
  double fiber_theta = 1.06e-3;
  /// How much of the arriving cone's angular spread widens the acceptance.
  double divergence_accept_factor = 1.9;
  /// Lens-NA saturation of the angular acceptance (rad).
  double theta_sat = 4.4e-3;
  /// Fixed mode-mismatch penalty (dB): ~0 for a collimated beam shrunk by a
  /// beam expander; large for a diverging beam captured by a collimator
  /// designed for collimated light (the paper's ~30 dB coupling loss).
  double mode_mismatch_db = 0.0;
  /// Connector/lens insertion loss (dB).
  double insertion_db = 1.5;
};

/// Loss breakdown, all in dB (positive = loss).
struct CouplingResult {
  double geometric_db = 0.0;   ///< Envelope fraction outside the aperture.
  double lateral_db = 0.0;     ///< Envelope-offset misalignment loss.
  double angular_db = 0.0;     ///< Incidence-angle misalignment loss.
  double fixed_db = 0.0;       ///< Mode mismatch + insertion.
  double total_db() const noexcept {
    return geometric_db + lateral_db + angular_db + fixed_db;
  }
};

/// Effective angular acceptance for a beam with local divergence
/// half-angle `delta` (saturating combination; see header comment).
double effective_theta_acc(const ReceiverDesign& rx, double delta) noexcept;

/// Full coupling loss for an arriving `beam` captured at `capture_point`
/// with acceptance axis `accept_dir` (unit vector pointing *toward* the
/// transmitter, i.e. against the arriving ray when aligned).
CouplingResult coupling_loss(const ReceiverDesign& rx, const TracedBeam& beam,
                             const geom::Vec3& capture_point,
                             const geom::Vec3& accept_dir);

/// Coupling loss from the reduced statistics directly (used by tests and
/// the fast slot simulator).
CouplingResult coupling_loss_from_errors(const ReceiverDesign& rx,
                                         double envelope_diameter,
                                         double local_divergence,
                                         double tail_factor, double delta_r,
                                         double psi);

// ---------------------------------------------------------------------------
// Calibrated link-design presets (see DESIGN.md §5 and the header comment).
// ---------------------------------------------------------------------------

/// Full link design: TX beam + RX optics pairing.
struct LinkDesign {
  BeamSpec beam;
  ReceiverDesign receiver;
  /// Nominal TX->RX range the design was optimized for (m).
  double nominal_range = 1.5;
};

/// 10G design A: 20 mm collimated beam via beam expanders at both ends.
LinkDesign collimated_10g(double beam_diameter = 20e-3);

/// 10G design B (chosen): diverging beam sized to `rx_diameter` at `range`.
LinkDesign diverging_10g(double rx_diameter = 20e-3, double range = 1.5);

/// 25G design: adjustable-focus collimators at both ends; better mode
/// match (2-3 dB better received power) and wider angular acceptance, but
/// a much thinner SFP28 link budget.
LinkDesign diverging_25g(double rx_diameter = 14e-3, double range = 1.5);

}  // namespace cyclops::optics

#include "optics/field.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace cyclops::optics {

Field::Field(std::size_t n, double pitch, double wavelength)
    : n_(n), pitch_(pitch), wavelength_(wavelength), data_(n * n) {
  if (!util::is_pow2(n)) throw std::invalid_argument("Field: n must be 2^k");
}

double Field::power() const {
  double sum = 0.0;
  for (const auto& e : data_) sum += std::norm(e);
  return sum * pitch_ * pitch_;
}

double Field::second_moment_radius() const {
  double sum = 0.0, sum_r2 = 0.0;
  for (std::size_t iy = 0; iy < n_; ++iy) {
    for (std::size_t ix = 0; ix < n_; ++ix) {
      const double intensity = std::norm(at(ix, iy));
      const double x = coord(ix);
      const double y = coord(iy);
      sum += intensity;
      sum_r2 += intensity * (x * x + y * y);
    }
  }
  if (sum <= 0.0) return 0.0;
  // Intensity ~ exp(-2 r^2 / w^2) has <r^2> = w^2 / 2, so w = sqrt(2<r^2>).
  return std::sqrt(2.0 * sum_r2 / sum);
}

void Field::propagate(double z) {
  util::fft2(data_, n_, /*inverse=*/false);
  const double k = 2.0 * util::kPi / wavelength_;
  const double df = 1.0 / (static_cast<double>(n_) * pitch_);
  for (std::size_t iy = 0; iy < n_; ++iy) {
    for (std::size_t ix = 0; ix < n_; ++ix) {
      // FFT frequency ordering: 0..n/2-1, -n/2..-1.
      const double fx =
          df * (ix < n_ / 2 ? static_cast<double>(ix)
                            : static_cast<double>(ix) -
                                  static_cast<double>(n_));
      const double fy =
          df * (iy < n_ / 2 ? static_cast<double>(iy)
                            : static_cast<double>(iy) -
                                  static_cast<double>(n_));
      const double kx = 2.0 * util::kPi * fx;
      const double ky = 2.0 * util::kPi * fy;
      // Paraxial transfer function (the common constant phase dropped).
      const double phase = -(kx * kx + ky * ky) * z / (2.0 * k);
      data_[iy * n_ + ix] *= util::Complex(std::cos(phase), std::sin(phase));
    }
  }
  util::fft2(data_, n_, /*inverse=*/true);
}

Field Field::gaussian(std::size_t n, double pitch, double wavelength,
                      double w0, double dx, double dy, double tx, double ty) {
  Field field(n, pitch, wavelength);
  const double k = 2.0 * util::kPi / wavelength;
  for (std::size_t iy = 0; iy < n; ++iy) {
    for (std::size_t ix = 0; ix < n; ++ix) {
      const double x = field.coord(ix) - dx;
      const double y = field.coord(iy) - dy;
      const double amplitude = std::exp(-(x * x + y * y) / (w0 * w0));
      // Linear phase = tilt.
      const double phase = k * (tx * field.coord(ix) + ty * field.coord(iy));
      field.at(ix, iy) =
          amplitude * util::Complex(std::cos(phase), std::sin(phase));
    }
  }
  return field;
}

double overlap_coupling(const Field& a, const Field& b) {
  if (a.n() != b.n()) throw std::invalid_argument("overlap: size mismatch");
  util::Complex inner(0.0, 0.0);
  double pa = 0.0, pb = 0.0;
  for (std::size_t iy = 0; iy < a.n(); ++iy) {
    for (std::size_t ix = 0; ix < a.n(); ++ix) {
      inner += a.at(ix, iy) * std::conj(b.at(ix, iy));
      pa += std::norm(a.at(ix, iy));
      pb += std::norm(b.at(ix, iy));
    }
  }
  if (pa <= 0.0 || pb <= 0.0) return 0.0;
  return std::norm(inner) / (pa * pb);
}

}  // namespace cyclops::optics

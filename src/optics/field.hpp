// Scalar wave-optics on a sampled grid: Gaussian-field construction,
// paraxial angular-spectrum propagation, and overlap-integral coupling.
//
// This layer exists to *validate* the parametric envelope/coupling models
// used everywhere else (tests/wave_optics_test.cpp): free-space spreading
// must match the analytic GaussianBeam law, and mode-overlap coupling
// must reproduce the Gaussian misalignment penalties the calibrated model
// assumes.  It is not on the simulation hot path.
#pragma once

#include <vector>

#include "util/fft.hpp"

namespace cyclops::optics {

/// A complex scalar field sampled on an n x n grid of physical pitch
/// `pitch` (meters), centered on the optical axis.
class Field {
 public:
  Field(std::size_t n, double pitch, double wavelength);

  std::size_t n() const noexcept { return n_; }
  double pitch() const noexcept { return pitch_; }
  double wavelength() const noexcept { return wavelength_; }

  util::Complex& at(std::size_t ix, std::size_t iy) {
    return data_[iy * n_ + ix];
  }
  const util::Complex& at(std::size_t ix, std::size_t iy) const {
    return data_[iy * n_ + ix];
  }

  /// Physical x coordinate of column ix (centered).
  double coord(std::size_t i) const {
    return (static_cast<double>(i) - static_cast<double>(n_) / 2.0) * pitch_;
  }

  /// Total power (sum |E|^2 * pitch^2).
  double power() const;

  /// 1/e^2 intensity radius estimated from the second moment.
  double second_moment_radius() const;

  /// Paraxial angular-spectrum propagation by distance z (meters).
  void propagate(double z);

  /// Gaussian mode of waist radius w0, laterally offset by (dx, dy) and
  /// tilted by (tx, ty) radians.
  static Field gaussian(std::size_t n, double pitch, double wavelength,
                        double w0, double dx = 0.0, double dy = 0.0,
                        double tx = 0.0, double ty = 0.0);

 private:
  std::size_t n_;
  double pitch_;
  double wavelength_;
  std::vector<util::Complex> data_;
};

/// Power coupling efficiency |<E1|E2>|^2 / (<E1|E1><E2|E2>) — the fraction
/// of E1's power accepted by mode E2 (e.g. the fiber's mode).
double overlap_coupling(const Field& a, const Field& b);

}  // namespace cyclops::optics

// Eye-safety accounting (IEC 60825-1 style, simplified).
//
// The paper leans on two facts (§2.2, §3): bare SFP transmitters are
// Class 1, and the 1550 nm band is "retina-safe" (the cornea/lens absorb
// before the retina), which allows ~10 mW of accessible CW power.  This
// module makes the accounting explicit: the commonly-cited CW Class-1
// accessible-emission limits per band, and the power actually collectable
// by a 7 mm pupil at the closest accessible point of the (possibly
// diverging) beam.  It reports honestly that the EDFA-boosted launch is
// Class 1 only beyond a standoff distance — which the ceiling mount
// provides by construction.
#pragma once

#include "optics/beam.hpp"
#include "optics/sfp.hpp"

namespace cyclops::optics {

/// Commonly-cited CW Class-1 accessible emission limits (simplified
/// single-point table; the full standard is time- and geometry-dependent).
double class1_ael_mw(double wavelength_nm) noexcept;

/// Power collectable by a 7 mm pupil centered in the beam at `distance`
/// from the launch aperture (mW).
double pupil_power_mw(double launch_power_dbm, const BeamSpec& beam,
                      double distance) noexcept;

struct EyeSafetyReport {
  double ael_mw = 0.0;
  double launch_power_mw = 0.0;     ///< Total power leaving the TX.
  double worst_pupil_power_mw = 0.0;  ///< At the closest accessible point.
  double closest_access_m = 0.0;
  bool class1_at_aperture = false;  ///< Safe even with the eye at the lens.
  bool class1_at_access = false;    ///< Safe at the closest accessible point.
  /// Distance beyond which the collectable power drops under the AEL
  /// (0 when safe everywhere).
  double safe_standoff_m = 0.0;
};

/// Evaluates a TX launch (SFP + amplifier + beam) assuming the nearest a
/// person can get to the ceiling-mounted aperture is `closest_access_m`.
EyeSafetyReport evaluate_eye_safety(const SfpSpec& sfp, const Edfa& amp,
                                    const BeamSpec& beam,
                                    double closest_access_m);

}  // namespace cyclops::optics

#include "optics/eye_safety.hpp"

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace cyclops::optics {
namespace {

constexpr double kPupilRadius = 3.5e-3;  // 7 mm pupil

double beam_diameter_at(const BeamSpec& beam, double distance) {
  if (beam.kind == BeamKind::kCollimated) return beam.launch_diameter;
  return beam.launch_diameter +
         2.0 * distance * std::tan(beam.divergence_half_angle);
}

}  // namespace

double class1_ael_mw(double wavelength_nm) noexcept {
  // Simplified per-band CW values (long-exposure AELs commonly quoted for
  // telecom work).  Retinal-hazard band is strict; 1400+ nm is absorbed
  // in the cornea/lens and allows ~10 mW.
  if (wavelength_nm < 1050.0) return 0.78;   // 850 nm band
  if (wavelength_nm < 1400.0) return 1.56;   // O-band (1310 nm)
  return 10.0;                               // C-band (1550 nm), retina-safe
}

double pupil_power_mw(double launch_power_dbm, const BeamSpec& beam,
                      double distance) noexcept {
  const double total_mw = util::dbm_to_mw(launch_power_dbm);
  const double diameter = beam_diameter_at(beam, distance);
  // Gaussian-envelope fraction through the pupil.
  const double fraction =
      1.0 - std::exp(-8.0 * kPupilRadius * kPupilRadius /
                     (diameter * diameter));
  return total_mw * fraction;
}

EyeSafetyReport evaluate_eye_safety(const SfpSpec& sfp, const Edfa& amp,
                                    const BeamSpec& beam,
                                    double closest_access_m) {
  EyeSafetyReport report;
  report.ael_mw = class1_ael_mw(sfp.wavelength_nm);
  const double launch_dbm =
      sfp.tx_power_dbm + amp.gain_for(sfp.wavelength_nm);
  report.launch_power_mw = util::dbm_to_mw(launch_dbm);
  report.closest_access_m = closest_access_m;

  report.class1_at_aperture =
      pupil_power_mw(launch_dbm, beam, 0.0) <= report.ael_mw;
  report.worst_pupil_power_mw =
      pupil_power_mw(launch_dbm, beam, closest_access_m);
  report.class1_at_access = report.worst_pupil_power_mw <= report.ael_mw;

  if (!report.class1_at_aperture) {
    // Find the standoff beyond which the pupil-collectable power is safe.
    double lo = 0.0, hi = 100.0;
    if (pupil_power_mw(launch_dbm, beam, hi) > report.ael_mw) {
      report.safe_standoff_m = hi;  // never safe within 100 m (collimated)
    } else {
      for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (pupil_power_mw(launch_dbm, beam, mid) > report.ael_mw) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      report.safe_standoff_m = hi;
    }
  }
  return report;
}

}  // namespace cyclops::optics

// Textbook Gaussian-beam propagation (TEM00).
//
// Used to sanity-check the envelope model in src/optics/beam.hpp against
// physical optics: a collimated 1550 nm beam of a few mm waist has
// negligible divergence over the 1.5-2 m Cyclops link, which justifies
// treating the collimated design as a constant-diameter cylinder.
#pragma once

namespace cyclops::optics {

class GaussianBeam {
 public:
  /// waist_radius: 1/e^2 intensity radius at the waist (m);
  /// wavelength: in meters (e.g. 1550e-9).
  GaussianBeam(double waist_radius, double wavelength);

  double waist_radius() const noexcept { return w0_; }
  double wavelength() const noexcept { return lambda_; }

  /// Rayleigh range z_R = pi w0^2 / lambda.
  double rayleigh_range() const noexcept;

  /// 1/e^2 radius at axial distance z from the waist.
  double radius_at(double z) const noexcept;

  /// Far-field divergence half-angle lambda / (pi w0).
  double divergence_half_angle() const noexcept;

  /// Fraction of total power within radius r of the axis at distance z.
  double power_fraction_within(double r, double z) const noexcept;

  /// On-axis-normalized intensity at radial offset r and distance z.
  double relative_intensity(double r, double z) const noexcept;

 private:
  double w0_;
  double lambda_;
};

}  // namespace cyclops::optics

// Envelope model of the launched FSO beam.
//
// Cyclops traces the beam as a chief ray plus an intensity envelope around
// it.  Two envelope kinds exist, matching the two §5.1 link designs:
//
//  * Collimated — constant diameter, all rays parallel to the chief ray
//    (the BE02-05-C beam-expander design).  Tilting the TX changes the
//    direction of every ray through the receive aperture.
//  * Diverging — a cone from a virtual apex slightly behind the launch
//    point (the CFC-2X-C adjustable-collimator design).  Tilting the TX
//    only slides the intensity envelope sideways: the ray that reaches a
//    fixed receive point always points from the apex to that point.  This
//    asymmetry is why Table 1 shows a huge TX angular tolerance for the
//    diverging design but not for the collimated one.
#pragma once

#include "geom/ray.hpp"
#include "geom/vec3.hpp"

namespace cyclops::optics {

enum class BeamKind {
  kCollimated,
  kDiverging,
};

/// Launch-side beam description (a property of the TX collimator).
struct BeamSpec {
  BeamKind kind = BeamKind::kDiverging;
  /// 1/e^2-style envelope diameter at the launch point (m).
  double launch_diameter = 2e-3;
  /// Cone half-angle for diverging beams (rad); ignored when collimated.
  double divergence_half_angle = 0.0;
  /// Lateral envelope scale factor: the misalignment "width" is
  /// tail_factor * radius.  ~1 for a clean Gaussian; >1 for the
  /// heavy-tailed output of the adjustable aspheric collimator.
  double tail_factor = 1.0;

  /// Spec for a diverging beam that reaches `target_diameter` at `range`.
  static BeamSpec diverging_for(double target_diameter, double range,
                                double launch_diameter = 2e-3,
                                double tail_factor = 1.8);

  /// Spec for a collimated beam of constant `diameter`.
  static BeamSpec collimated(double diameter, double tail_factor = 1.0);
};

/// A beam in flight: chief ray plus envelope geometry.  Mirror reflections
/// update both the chief ray and the virtual apex (mirror image).
struct TracedBeam {
  geom::Ray chief;    ///< Chief ray: origin on the last optic, unit direction.
  geom::Vec3 apex;    ///< Virtual cone apex (== chief.origin for collimated).
  BeamSpec spec;

  /// Envelope diameter at a point (uses distance from the apex for
  /// diverging beams; constant for collimated).
  double envelope_diameter_at(const geom::Vec3& p) const;

  /// Lateral envelope scale (the Gaussian-like "w") at a point.
  double lateral_scale_at(const geom::Vec3& p) const;

  /// Direction of the ray within the beam that passes through p.
  geom::Vec3 arriving_dir_at(const geom::Vec3& p) const;

  /// Perpendicular distance from p to the beam's central axis.
  double envelope_offset(const geom::Vec3& p) const;

  /// Local divergence half-angle as seen at p (0 for collimated).
  double local_divergence_at(const geom::Vec3& p) const;

  /// The beam after a mirror reflection at `mirror` (also reflects the
  /// apex so the cone geometry stays consistent).  Returns false via
  /// optional if the chief ray misses the mirror plane.
  std::optional<TracedBeam> reflected(const geom::Plane& mirror) const;
};

/// Builds the beam launched from `launch` (origin = collimator output,
/// dir = optical axis) with the given spec.
TracedBeam launch_beam(const geom::Ray& launch, const BeamSpec& spec);

}  // namespace cyclops::optics

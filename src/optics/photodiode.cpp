#include "optics/photodiode.hpp"

#include <cmath>

namespace cyclops::optics {

double QuadReading::error_x() const noexcept {
  const double s = currents[0] + currents[1];
  return s > 0.0 ? (currents[0] - currents[1]) / s : 0.0;
}

double QuadReading::error_y() const noexcept {
  const double s = currents[2] + currents[3];
  return s > 0.0 ? (currents[2] - currents[3]) / s : 0.0;
}

QuadPhotodiode::QuadPhotodiode(geom::Pose center_pose, double arm_radius)
    : pose_(std::move(center_pose)), arm_radius_(arm_radius) {}

QuadReading QuadPhotodiode::read(const TracedBeam& beam) const {
  const std::array<geom::Vec3, 4> local{{{arm_radius_, 0, 0},
                                         {-arm_radius_, 0, 0},
                                         {0, arm_radius_, 0},
                                         {0, -arm_radius_, 0}}};
  QuadReading reading;
  for (std::size_t i = 0; i < local.size(); ++i) {
    const geom::Vec3 p = pose_.apply(local[i]);
    const double w = beam.lateral_scale_at(p);
    const double r = beam.envelope_offset(p);
    // Envelope intensity falls as exp(-2 r^2 / w^2); scale by 1/w^2 so a
    // wider (more spread) beam reads lower, like a real diode would.
    reading.currents[i] = std::exp(-2.0 * r * r / (w * w)) / (w * w);
  }
  return reading;
}

}  // namespace cyclops::optics

// SFP transceiver specifications.
//
// These mirror the commodity parts used by the prototype (Appendix A):
// Cisco-compatible SFP-10G-ZR100 (1550 nm) for the 10G link and FS SFP28-LR
// (1310 nm) for the 25G link.  The TP algorithms only consume transmit
// power, receive sensitivity, line rate, and the link-up delay the paper
// observes ("the SFPs taking a few seconds to report that the link is up").
#pragma once

#include <string>

namespace cyclops::optics {

struct SfpSpec {
  std::string name;
  double wavelength_nm = 1550.0;
  double tx_power_dbm = 0.0;
  double rx_sensitivity_dbm = -25.0;
  /// Nominal line rate.
  double line_rate_gbps = 10.0;
  /// iperf-measured goodput when the link is clean (9.4 Gbps on 10GbE).
  double goodput_gbps = 9.4;
  /// Time for the transceiver/NIC to re-declare the link up after light
  /// returns (seconds).
  double link_up_delay_s = 2.0;

  double link_budget_db() const noexcept {
    return tx_power_dbm - rx_sensitivity_dbm;
  }
};

/// 10G 1550 nm ZR SFP+ (80-100 km part): 0-4 dBm TX, -25 dBm sensitivity.
inline SfpSpec sfp_10g_zr() {
  return {.name = "SFP-10G-ZR",
          .wavelength_nm = 1550.0,
          .tx_power_dbm = 0.0,
          .rx_sensitivity_dbm = -25.0,
          .line_rate_gbps = 10.0,
          .goodput_gbps = 9.4,
          .link_up_delay_s = 2.0};
}

/// 25G SFP28 LR (10 km, 1310 nm): link budget 12-18 dB; no EDFA available
/// at 1310 nm, so the 25G design must live off better coupling instead.
inline SfpSpec sfp28_lr() {
  return {.name = "SFP28-LR",
          .wavelength_nm = 1310.0,
          .tx_power_dbm = 2.0,
          .rx_sensitivity_dbm = -14.0,
          .line_rate_gbps = 25.0,
          .goodput_gbps = 23.5,
          .link_up_delay_s = 2.0};
}

/// 25G SFP28 ER (40 km): larger budget (19-25 dB) but no compatible NIC
/// existed for the prototype — kept in the catalog for what-if studies.
inline SfpSpec sfp28_er() {
  return {.name = "SFP28-ER",
          .wavelength_nm = 1550.0,
          .tx_power_dbm = 3.0,
          .rx_sensitivity_dbm = -21.0,
          .line_rate_gbps = 25.0,
          .goodput_gbps = 23.5,
          .link_up_delay_s = 2.0};
}

/// Erbium-doped fiber amplifier.  Only amplifies in the C-band around
/// 1550 nm; returns 0 gain for other wavelengths (the 25G LR design cannot
/// use it).
struct Edfa {
  double gain_db = 17.0;
  double min_wavelength_nm = 1525.0;
  double max_wavelength_nm = 1575.0;

  double gain_for(double wavelength_nm) const noexcept {
    return (wavelength_nm >= min_wavelength_nm &&
            wavelength_nm <= max_wavelength_nm)
               ? gain_db
               : 0.0;
  }
};

}  // namespace cyclops::optics

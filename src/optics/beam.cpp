#include "optics/beam.hpp"

#include <cmath>

#include "geom/reflect.hpp"

namespace cyclops::optics {

BeamSpec BeamSpec::diverging_for(double target_diameter, double range,
                                 double launch_diameter, double tail_factor) {
  BeamSpec spec;
  spec.kind = BeamKind::kDiverging;
  spec.launch_diameter = launch_diameter;
  spec.divergence_half_angle =
      (target_diameter - launch_diameter) / (2.0 * range);
  spec.tail_factor = tail_factor;
  return spec;
}

BeamSpec BeamSpec::collimated(double diameter, double tail_factor) {
  BeamSpec spec;
  spec.kind = BeamKind::kCollimated;
  spec.launch_diameter = diameter;
  spec.divergence_half_angle = 0.0;
  spec.tail_factor = tail_factor;
  return spec;
}

double TracedBeam::envelope_diameter_at(const geom::Vec3& p) const {
  if (spec.kind == BeamKind::kCollimated) return spec.launch_diameter;
  const double dist = geom::distance(apex, p);
  return 2.0 * dist * std::tan(spec.divergence_half_angle);
}

double TracedBeam::lateral_scale_at(const geom::Vec3& p) const {
  return spec.tail_factor * 0.5 * envelope_diameter_at(p);
}

geom::Vec3 TracedBeam::arriving_dir_at(const geom::Vec3& p) const {
  if (spec.kind == BeamKind::kCollimated) return chief.dir;
  const geom::Vec3 d = p - apex;
  const double n = d.norm();
  // Degenerate: asking at the apex itself; fall back to the chief direction.
  if (n < 1e-12) return chief.dir;
  return d / n;
}

double TracedBeam::envelope_offset(const geom::Vec3& p) const {
  return geom::line_point_distance(chief, p);
}

double TracedBeam::local_divergence_at(const geom::Vec3&) const {
  return spec.kind == BeamKind::kCollimated ? 0.0
                                            : spec.divergence_half_angle;
}

std::optional<TracedBeam> TracedBeam::reflected(
    const geom::Plane& mirror) const {
  const auto out = geom::reflect(chief, mirror);
  if (!out) return std::nullopt;
  TracedBeam result;
  result.chief = *out;
  result.spec = spec;
  // Mirror-image the apex across the mirror plane so distances and ray
  // directions inside the cone remain correct after the fold.
  const geom::Vec3 n = mirror.normal.normalized();
  const double d = (apex - mirror.point).dot(n);
  result.apex = apex - n * (2.0 * d);
  return result;
}

TracedBeam launch_beam(const geom::Ray& launch, const BeamSpec& spec) {
  TracedBeam beam;
  beam.chief = {launch.origin, launch.dir.normalized()};
  beam.spec = spec;
  if (spec.kind == BeamKind::kDiverging && spec.divergence_half_angle > 0.0) {
    // Place the virtual apex behind the launch point so the envelope has
    // the requested launch diameter at the launch plane.
    const double back =
        (spec.launch_diameter * 0.5) / std::tan(spec.divergence_half_angle);
    beam.apex = beam.chief.origin - beam.chief.dir * back;
  } else {
    beam.apex = beam.chief.origin;
  }
  return beam;
}

}  // namespace cyclops::optics

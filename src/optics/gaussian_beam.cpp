#include "optics/gaussian_beam.hpp"

#include <cmath>

#include "util/units.hpp"

namespace cyclops::optics {

GaussianBeam::GaussianBeam(double waist_radius, double wavelength)
    : w0_(waist_radius), lambda_(wavelength) {}

double GaussianBeam::rayleigh_range() const noexcept {
  return util::kPi * w0_ * w0_ / lambda_;
}

double GaussianBeam::radius_at(double z) const noexcept {
  const double zr = rayleigh_range();
  const double ratio = z / zr;
  return w0_ * std::sqrt(1.0 + ratio * ratio);
}

double GaussianBeam::divergence_half_angle() const noexcept {
  return lambda_ / (util::kPi * w0_);
}

double GaussianBeam::power_fraction_within(double r, double z) const noexcept {
  const double w = radius_at(z);
  return 1.0 - std::exp(-2.0 * r * r / (w * w));
}

double GaussianBeam::relative_intensity(double r, double z) const noexcept {
  const double w = radius_at(z);
  const double axial = (w0_ * w0_) / (w * w);
  return axial * std::exp(-2.0 * r * r / (w * w));
}

}  // namespace cyclops::optics

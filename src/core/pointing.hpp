// The pointing function P (§4.3): VRH pose report -> the four GM voltages
// that realign the beam.
//
// Uses Lemma 1: alternate between the two GMAs, each time aiming one at
// the other's current beam-origin point via G', until the voltages stop
// changing (threshold = minimum GM voltage step).  Converges in 2-5
// iterations; the whole computation is microseconds — the realignment
// latency is dominated by the DAQ, not by P.
#pragma once

#include <optional>

#include "core/gma_model.hpp"
#include "core/gprime.hpp"
#include "geom/pose.hpp"
#include "sim/scene.hpp"

namespace cyclops::core {

struct PointingOptions {
  int max_iterations = 10;
  /// Voltage-change threshold to declare convergence (V).
  double tolerance_volts = 1e-3;
  GPrimeOptions gprime;
};

struct PointingResult {
  sim::Voltages voltages;
  int iterations = 0;
  bool converged = false;
  /// Final Lemma-1 coincidence residual under the learned models (m).
  double model_residual_m = 0.0;
};

/// The learned pointing mechanism: Stage-1 models + Stage-2 mappings.
class PointingSolver {
 public:
  /// `ctx` supplies the registry the inner G' solver tallies into (the
  /// default context = the shared global registry, as before).
  PointingSolver(GmaModel tx_kspace, GmaModel rx_kspace, geom::Pose map_tx,
                 geom::Pose map_rx, PointingOptions options = {},
                 const runtime::Context& ctx = runtime::Context::default_ctx());

  /// Computes P(psi).  `hint` warm-starts the iteration (last voltages).
  PointingResult solve(const geom::Pose& psi, const sim::Voltages& hint) const;

  /// The TX model in VR-space (fixed) and the RX model for a given report.
  const GmaModel& tx_vr() const noexcept { return tx_vr_; }
  GmaModel rx_vr(const geom::Pose& psi) const {
    return rx_kspace_.transformed(psi * map_rx_);
  }

  const geom::Pose& map_tx() const noexcept { return map_tx_; }
  const geom::Pose& map_rx() const noexcept { return map_rx_; }

 private:
  GmaModel rx_kspace_;
  GmaModel tx_vr_;
  geom::Pose map_tx_;
  geom::Pose map_rx_;
  PointingOptions options_;
  GPrimeSolver gprime_;
};

}  // namespace cyclops::core

#include "core/drift_monitor.hpp"

#include <algorithm>
#include <cmath>

namespace cyclops::core {

void DriftMonitor::on_post_realignment_power(double power_dbm) {
  if (!std::isfinite(power_dbm)) {
    // Occlusion or total loss: not evidence about the mapping.  (Drift
    // shows up as a *consistent shallow* shortfall, not a blackout.)
    return;
  }
  if (samples_ == 0) {
    ema_ = power_dbm;
  } else {
    const double alpha =
        1.0 / std::min(samples_ + 1, config_.window_samples);
    ema_ += alpha * (power_dbm - ema_);
  }
  ++samples_;
}

bool DriftMonitor::recalibration_needed() const noexcept {
  if (samples_ < config_.min_samples) return false;
  return ema_ < config_.healthy_power_dbm - config_.drift_threshold_db;
}

void DriftMonitor::reset() {
  ema_ = 0.0;
  samples_ = 0;
}

}  // namespace cyclops::core

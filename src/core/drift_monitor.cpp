#include "core/drift_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "obs/config.hpp"
#include "obs/registry.hpp"

namespace cyclops::core {

void DriftMonitor::on_post_realignment_power(double power_dbm) {
  if (!std::isfinite(power_dbm)) {
    // Occlusion or total loss: not evidence about the mapping.  (Drift
    // shows up as a *consistent shallow* shortfall, not a blackout.)
    return;
  }
  if (samples_ == 0) {
    ema_ = power_dbm;
  } else {
    const double alpha =
        1.0 / std::min(samples_ + 1, config_.window_samples);
    ema_ += alpha * (power_dbm - ema_);
  }
  ++samples_;
  if (samples_ >= config_.min_samples &&
      ema_ < config_.healthy_power_dbm - config_.drift_threshold_db) {
    latched_ = true;
  }
}

bool DriftMonitor::recalibration_needed() const noexcept { return latched_; }

void DriftMonitor::reset() {
  ema_ = 0.0;
  samples_ = 0;
  latched_ = false;
}

void DriftMonitor::publish(obs::Registry& registry) const {
  if constexpr (obs::kEnabled) {
    registry.gauge("drift_monitor_ema_dbm").set(ema_);
    registry.gauge("drift_monitor_samples")
        .set(static_cast<double>(samples_));
    registry.gauge("drift_monitor_recal_needed").set(latched_ ? 1.0 : 0.0);
  }
}

}  // namespace cyclops::core

// Calibration persistence.
//
// Stage 1 runs at the factory and Stage 2 once per deployment (§4's
// "offline vs online training"); a real system must reload both across
// power cycles and only re-run Stage 2 on re-deployment or VRH-T drift.
// The file format is a line-oriented text format:
//
//   cyclops-calibration v2
//   tx_model  <25 doubles>
//   rx_model  <25 doubles>
//   map_tx    <6 doubles>
//   map_rx    <6 doubles>
//   stats     <tx_avg tx_max rx_avg rx_max coincidence_avg coincidence_max>
//
// v2 is a header bump over v1 (identical records); the loader accepts
// both.  Malformed files — truncation, wrong value counts, non-finite or
// non-numeric fields — are rejected with a std::runtime_error naming the
// 1-based line and field.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/calibration.hpp"

namespace cyclops::core {

/// Line-oriented record helpers shared by the calibration file format and
/// the engine-checkpoint format (cal/checkpoint.hpp): `<key> <values...>`
/// lines with exact round-tripping (doubles at 17 significant digits,
/// unsigned integers verbatim) and every rejection naming the 1-based
/// line and field.
namespace persist {

void write_values(std::ostream& out, const char* key,
                  std::span<const double> values);
void write_u64_values(std::ostream& out, const char* key,
                      std::span<const std::uint64_t> values);

/// Throws std::runtime_error naming the line.
[[noreturn]] void fail(int line_number, const std::string& what);

/// Parses one `<key> <count doubles>` line; `line_number` counts lines
/// consumed so far (the header is line 1) and is advanced.
std::vector<double> expect_line(std::istream& in, const std::string& key,
                                std::size_t count, int& line_number);

/// Parses one `<key> <count u64s>` line.  Values must be non-negative
/// decimal integers that fit in 64 bits (doubles would corrupt RNG words
/// above 2^53).
std::vector<std::uint64_t> expect_u64_line(std::istream& in,
                                           const std::string& key,
                                           std::size_t count,
                                           int& line_number);

}  // namespace persist

/// Writes the learned models and mappings.  Throws std::runtime_error on
/// I/O failure.
void save_calibration(const std::filesystem::path& path,
                      const CalibrationResult& calibration);

/// Reads a file written by save_calibration.  The returned result carries
/// the learned models, mappings, and stats; the raw Stage-2 tuples are
/// not persisted.  Throws std::runtime_error on I/O or format errors.
CalibrationResult load_calibration(const std::filesystem::path& path);

}  // namespace cyclops::core

// Calibration persistence.
//
// Stage 1 runs at the factory and Stage 2 once per deployment (§4's
// "offline vs online training"); a real system must reload both across
// power cycles and only re-run Stage 2 on re-deployment or VRH-T drift.
// The file format is a line-oriented text format:
//
//   cyclops-calibration v2
//   tx_model  <25 doubles>
//   rx_model  <25 doubles>
//   map_tx    <6 doubles>
//   map_rx    <6 doubles>
//   stats     <tx_avg tx_max rx_avg rx_max coincidence_avg coincidence_max>
//
// v2 is a header bump over v1 (identical records); the loader accepts
// both.  Malformed files — truncation, wrong value counts, non-finite or
// non-numeric fields — are rejected with a std::runtime_error naming the
// 1-based line and field.
#pragma once

#include <filesystem>

#include "core/calibration.hpp"

namespace cyclops::core {

/// Writes the learned models and mappings.  Throws std::runtime_error on
/// I/O failure.
void save_calibration(const std::filesystem::path& path,
                      const CalibrationResult& calibration);

/// Reads a file written by save_calibration.  The returned result carries
/// the learned models, mappings, and stats; the raw Stage-2 tuples are
/// not persisted.  Throws std::runtime_error on I/O or format errors.
CalibrationResult load_calibration(const std::filesystem::path& path);

}  // namespace cyclops::core

// Evaluation of learned-model accuracy against simulator ground truth —
// the quantities behind Table 2's "combined" rows and the TP-accuracy
// experiment of §5.2.  Nothing here feeds back into the learner.
#pragma once

#include "core/calibration.hpp"
#include "core/pointing.hpp"
#include "sim/prototype.hpp"

namespace cyclops::core {

struct ModelErrorStats {
  double avg_m = 0.0;
  double max_m = 0.0;
  int samples = 0;
};

struct CombinedErrors {
  ModelErrorStats tx;
  ModelErrorStats rx;
};

/// "Combined" (stage 1 + stage 2) model error: over `n_test` random rig
/// poses with exhaustively aligned voltages, the distance between where
/// the learned chain predicts each beam lands on the opposite mirror-2
/// plane and where the physical beam actually lands.
CombinedErrors evaluate_combined_errors(sim::Prototype& proto,
                                        const CalibrationResult& calib,
                                        int n_test, double pose_extent,
                                        double angle_extent, util::Rng& rng);

struct TpAccuracySample {
  double power_dbm = 0.0;       ///< After TP realignment.
  double optimal_power_dbm = 0.0;  ///< After exhaustive alignment.
  bool link_up = false;         ///< Power above sensitivity after TP.
  int pointing_iterations = 0;
};

/// §5.2's lock test: move the rig to a random pose, run P once from the
/// (noisy) tracker report, and compare against the exhaustive optimum.
std::vector<TpAccuracySample> run_lock_tests(sim::Prototype& proto,
                                             const PointingSolver& solver,
                                             int n_tests, double pose_extent,
                                             double angle_extent,
                                             util::Rng& rng);

}  // namespace cyclops::core

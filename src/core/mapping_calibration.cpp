#include "core/mapping_calibration.hpp"

#include <algorithm>
#include <cmath>

#include "geom/ray.hpp"

namespace cyclops::core {
namespace {

std::optional<geom::Vec3> hit_on_plane(const std::optional<geom::Ray>& ray,
                                       const geom::Plane& plane) {
  if (!ray) return std::nullopt;
  const auto t = geom::intersect(*ray, plane, /*forward_only=*/false);
  if (!t) return std::nullopt;
  return ray->at(*t);
}

std::array<double, 12> pack_maps(const geom::Pose& tx, const geom::Pose& rx) {
  const auto a = tx.params();
  const auto b = rx.params();
  std::array<double, 12> out{};
  std::copy(a.begin(), a.end(), out.begin());
  std::copy(b.begin(), b.end(), out.begin() + 6);
  return out;
}

std::pair<geom::Pose, geom::Pose> unpack_maps(std::span<const double> v) {
  std::array<double, 6> a{}, b{};
  std::copy(v.begin(), v.begin() + 6, a.begin());
  std::copy(v.begin() + 6, v.begin() + 12, b.begin());
  return {geom::Pose::from_params(a), geom::Pose::from_params(b)};
}

}  // namespace

LemmaPoints lemma_points(const GmaModel& tx_vr, const GmaModel& rx_vr,
                         const sim::Voltages& v) {
  LemmaPoints pts;
  const auto ray_t = tx_vr.trace(v.tx1, v.tx2);
  const auto ray_r = rx_vr.trace(v.rx1, v.rx2);
  if (!ray_t || !ray_r) return pts;
  pts.p_t = ray_t->origin;
  pts.p_r = ray_r->origin;

  const auto tau_t = hit_on_plane(ray_t, rx_vr.mirror2_plane(v.rx2));
  const auto tau_r = hit_on_plane(ray_r, tx_vr.mirror2_plane(v.tx2));
  if (!tau_t || !tau_r) return pts;
  pts.tau_t = *tau_t;
  pts.tau_r = *tau_r;
  pts.valid = true;
  return pts;
}

MappingFitReport fit_mapping_blind(const GmaModel& tx_kspace,
                                   const GmaModel& rx_kspace,
                                   const std::vector<AlignedSample>& samples,
                                   util::Rng& rng,
                                   const opt::LevMarOptions& options,
                                   const runtime::Context& ctx) {
  // Phase A finds M_tx alone using a geometric fact that needs no RX
  // model at all: at alignment, the TX beam passes through the headset,
  // so (in VR-space) the modeled beam must pass within centimeters of
  // every reported VRH position — a 6-D problem instead of 12-D.

  // Seed the TX translation near the reported-position centroid (the TX
  // must be within a room of the user).
  geom::Vec3 centroid{};
  for (const auto& sample : samples) centroid += sample.psi.translation();
  if (!samples.empty()) {
    centroid = centroid / static_cast<double>(samples.size());
  }

  // Uniform random rotation vector (angle up to pi).
  const auto random_rotvec = [&rng] {
    const geom::Vec3 axis =
        geom::Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
    return axis * rng.uniform(0.0, 3.1);
  };

  // Phase A: multi-start LM over the 6 TX parameters (rotation drawn
  // uniformly over SO(3) — the hidden frame can be arbitrarily rotated).
  const opt::ResidualFn tx_residuals = [&](std::span<const double> p6,
                                           std::vector<double>& r) {
    std::array<double, 6> arr{};
    std::copy(p6.begin(), p6.end(), arr.begin());
    const GmaModel tx_vr =
        tx_kspace.transformed(geom::Pose::from_params(arr));
    r.resize(samples.size());
    for (std::size_t s = 0; s < samples.size(); ++s) {
      const auto ray = tx_vr.trace(samples[s].voltages.tx1,
                                   samples[s].voltages.tx2);
      r[s] = ray ? geom::line_point_distance(
                       *ray, samples[s].psi.translation())
                 : 2.0;
    }
  };

  std::vector<double> tx_best(6, 0.0);
  double tx_best_value = 1e18;
  for (int start = 0; start < 60; ++start) {
    const geom::Vec3 rv = random_rotvec();
    const std::vector<double> x0{
        rv.x,
        rv.y,
        rv.z,
        centroid.x + rng.normal(0.0, 0.5),
        centroid.y + rng.normal(0.0, 0.5),
        centroid.z + rng.normal(0.0, 0.5)};
    opt::LevMarOptions lm;
    lm.max_iterations = 60;
    const auto fit = opt::levenberg_marquardt(tx_residuals, x0, lm, ctx);
    if (fit.final_cost < tx_best_value) {
      tx_best_value = fit.final_cost;
      tx_best = fit.params;
    }
  }

  // Phase B: multi-start over the RX rotation (translation starts at 0 —
  // the RX GMA rides the headset), scoring with the full Lemma-1 cost and
  // polishing all 12 parameters jointly each time.
  const auto [tx_seed, ignored] = unpack_maps(std::vector<double>{
      tx_best[0], tx_best[1], tx_best[2], tx_best[3], tx_best[4], tx_best[5],
      0, 0, 0, 0, 0, 0});
  (void)ignored;

  MappingFitReport best_report;
  double best_value = 1e18;
  for (int start = 0; start < 12; ++start) {
    const geom::Vec3 rv = random_rotvec();
    std::array<double, 6> rx_arr{rv.x, rv.y, rv.z, 0.0, 0.0, 0.0};
    const geom::Pose rx_seed = geom::Pose::from_params(rx_arr);
    const MappingFitReport report = fit_mapping(
        tx_kspace, rx_kspace, samples, tx_seed, rx_seed, options, ctx);
    if (report.avg_coincidence_m < best_value) {
      best_value = report.avg_coincidence_m;
      best_report = report;
    }
    if (best_value < 5e-3) break;  // good basin found
  }
  return best_report;
}

MappingFitProblem make_mapping_problem(const GmaModel& tx_kspace,
                                       const GmaModel& rx_kspace,
                                       const std::vector<AlignedSample>& samples,
                                       const geom::Pose& tx_guess,
                                       const geom::Pose& rx_guess) {
  MappingFitProblem problem;
  problem.residuals = [&tx_kspace, &rx_kspace, &samples](
                          std::span<const double> params,
                          std::vector<double>& residuals) {
    const auto [map_tx, map_rx] = unpack_maps(params);
    const GmaModel tx_vr = tx_kspace.transformed(map_tx);
    residuals.resize(samples.size() * 6);
    for (std::size_t s = 0; s < samples.size(); ++s) {
      const GmaModel rx_vr =
          rx_kspace.transformed(samples[s].psi * map_rx);
      const LemmaPoints pts = lemma_points(tx_vr, rx_vr, samples[s].voltages);
      double* r = residuals.data() + 6 * s;
      if (pts.valid) {
        const geom::Vec3 d1 = pts.tau_r - pts.p_t;
        const geom::Vec3 d2 = pts.tau_t - pts.p_r;
        r[0] = d1.x; r[1] = d1.y; r[2] = d1.z;
        r[3] = d2.x; r[4] = d2.y; r[5] = d2.z;
      } else {
        std::fill(r, r + 6, 1.0);  // 1 m penalty
      }
    }
  };
  const auto packed = pack_maps(tx_guess, rx_guess);
  problem.initial.assign(packed.begin(), packed.end());
  return problem;
}

MappingFitReport finish_mapping_fit(const GmaModel& tx_kspace,
                                    const GmaModel& rx_kspace,
                                    const std::vector<AlignedSample>& samples,
                                    const opt::LevMarResult& fit) {
  const auto [map_tx, map_rx] = unpack_maps(fit.params);
  MappingFitReport report{map_tx, map_rx, 0.0, 0.0, fit.iterations,
                          fit.converged};

  const GmaModel tx_vr = tx_kspace.transformed(map_tx);
  for (const auto& sample : samples) {
    const GmaModel rx_vr = rx_kspace.transformed(sample.psi * map_rx);
    const LemmaPoints pts = lemma_points(tx_vr, rx_vr, sample.voltages);
    const double e = pts.valid ? pts.coincidence_error() : 2.0;
    report.avg_coincidence_m += e;
    report.max_coincidence_m = std::max(report.max_coincidence_m, e);
  }
  if (!samples.empty()) {
    report.avg_coincidence_m /= static_cast<double>(samples.size());
  }
  return report;
}

MappingFitReport fit_mapping(const GmaModel& tx_kspace,
                             const GmaModel& rx_kspace,
                             const std::vector<AlignedSample>& samples,
                             const geom::Pose& tx_guess,
                             const geom::Pose& rx_guess,
                             const opt::LevMarOptions& options,
                             const runtime::Context& ctx) {
  const MappingFitProblem problem =
      make_mapping_problem(tx_kspace, rx_kspace, samples, tx_guess, rx_guess);
  const auto fit = opt::levenberg_marquardt(problem.residuals, problem.initial,
                                            options, ctx);
  return finish_mapping_fit(tx_kspace, rx_kspace, samples, fit);
}

}  // namespace cyclops::core

// The learned GMA model G — the paper's central object (§4.1).
//
// G(v1, v2) -> (p, x⃗): maps the two galvo voltages to the output beam's
// origin point (on mirror 2) and direction.  A GmaModel is *what Cyclops
// believes* about a physical GMA; it shares the GalvoParams
// parameterization but carries no aperture/clipping knowledge (the learner
// never sees those).  Models can be rigidly re-expressed in another frame
// (K-space -> VR-space) — that is exactly what the Stage-2 "mapping
// parameters" do.
#pragma once

#include <optional>

#include "galvo/galvo_mirror.hpp"
#include "geom/pose.hpp"
#include "geom/ray.hpp"

namespace cyclops::core {

class GmaModel {
 public:
  explicit GmaModel(galvo::GalvoParams params) : params_(std::move(params)) {}

  const galvo::GalvoParams& params() const noexcept { return params_; }

  /// The modeled output beam (p, x⃗).  nullopt only in degenerate
  /// configurations (beam parallel to a mirror plane).
  std::optional<geom::Ray> trace(double v1, double v2) const {
    auto ray = galvo::trace_ideal(params_, v1, v2);
    if (ray && frozen_origin_) ray->origin = *frozen_origin_;
    return ray;
  }

  /// Mirror-2 plane for the given second-mirror voltage; contains every
  /// beam origin p and Lemma 1's target points tau.
  geom::Plane mirror2_plane(double v2) const;

  /// The same physical model expressed in `map`'s parent frame
  /// (map: this-frame -> parent-frame).
  GmaModel transformed(const geom::Pose& map) const;

  /// Ablation: the [32, 33]-style simplification that treats the beam
  /// origin p as a constant (its zero-voltage value) instead of letting it
  /// move with the voltages.  The paper argues this "distortion" must be
  /// modeled for mm accuracy — bench/ablation_distortion quantifies it.
  GmaModel with_frozen_origin() const;
  bool origin_frozen() const noexcept { return frozen_origin_.has_value(); }

 private:
  galvo::GalvoParams params_;
  /// When set, trace() reports this fixed origin point.
  std::optional<geom::Vec3> frozen_origin_;
};

}  // namespace cyclops::core

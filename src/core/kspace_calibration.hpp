// Stage 1 (§4.1): learn a GMA's model parameters in its K-space rig.
//
// Lab procedure being reproduced: the GMA sits ~1.5 m in front of a planar
// board with a 20x15 grid of 1-inch cells (K-space x-y plane is the board).
// For each of the 266 interior grid points the experimenter finds the
// voltage pair that steers the beam onto the point (to within hand/eye
// accuracy), yielding 4-tuples (x, y, v1, v2).  Nonlinear least squares
// then recovers the GalvoParams minimizing the board-plane hit error,
// seeded with the manufacturer's CAD values.
#pragma once

#include <vector>

#include "core/gma_model.hpp"
#include "core/gprime.hpp"
#include "galvo/galvo_mirror.hpp"
#include "geom/pose.hpp"
#include "opt/levmar.hpp"
#include "util/rng.hpp"

namespace cyclops::core {

/// One training tuple: board point (m) and the voltages that hit it.
struct BoardSample {
  double x = 0.0;
  double y = 0.0;
  double v1 = 0.0;
  double v2 = 0.0;
};

struct BoardConfig {
  int cells_x = 20;
  int cells_y = 15;
  double cell_size = 0.0254;  ///< 1 inch.
  /// Hand-alignment accuracy: achieved hit point vs grid point (per-axis
  /// Gaussian sigma, m).
  double alignment_sigma = 0.8e-3;
};

/// Emulates the lab data collection against the *physical* galvo mounted
/// at `k_from_gma` in the board rig.  Only interior grid points are used
/// (19 x 14 = 266 for the default board).  The internal G' solves tally
/// into `ctx.registry()`.  (An adapter over BoardSampleCollector.)
std::vector<BoardSample> collect_board_samples(
    const galvo::GalvoMirror& physical_galvo, const geom::Pose& k_from_gma,
    const BoardConfig& config, util::Rng& rng,
    const runtime::Context& ctx = runtime::Context::default_ctx());

/// Grid-point-granular board collection: one step() per interior grid
/// point, drawing the same rng values in the same order as the one-shot
/// loop, so the sample set (and the caller's rng stream) is bit-identical
/// however the steps are sliced across events.  Checkpointable: state()
/// plus the samples so far fully determine the continuation.
class BoardSampleCollector {
 public:
  /// Resumable scalar state (the grid cursor and the G' warm start).
  struct State {
    int i = 1;
    int j = 1;
    double v1 = 0.0;
    double v2 = 0.0;
  };

  /// `physical_galvo` must outlive the collector.
  BoardSampleCollector(
      const galvo::GalvoMirror& physical_galvo, const geom::Pose& k_from_gma,
      const BoardConfig& config,
      const runtime::Context& ctx = runtime::Context::default_ctx());

  bool done() const noexcept { return state_.i >= config_.cells_x; }

  /// Processes one grid point (draws the hand-alignment noise, runs G',
  /// records the sample if usable).  Returns !done() afterwards.
  bool step(util::Rng& rng);

  const std::vector<BoardSample>& samples() const noexcept { return samples_; }
  std::vector<BoardSample> take_samples() { return std::move(samples_); }

  const State& state() const noexcept { return state_; }
  /// Restores a checkpointed collection mid-grid.
  void restore(const State& state, std::vector<BoardSample> samples) {
    state_ = state;
    samples_ = std::move(samples);
  }

 private:
  const galvo::GalvoMirror* galvo_;
  GmaModel truth_in_k_;
  BoardConfig config_;
  GPrimeSolver solver_;
  std::vector<BoardSample> samples_;
  State state_;
};

struct KSpaceFitReport {
  GmaModel model;          ///< Learned model, expressed in K-space.
  double avg_error_m = 0.0;  ///< Mean board-plane hit error over samples.
  double max_error_m = 0.0;
  int optimizer_iterations = 0;
  bool converged = false;
};

/// Board-plane hit error of `model` against the samples (used for both the
/// fit report and held-out evaluation).
double board_error(const GmaModel& model, const BoardSample& sample);

/// Fits the 25 GalvoParams to the samples, seeded by `initial_guess`
/// (nominal CAD geometry placed at the nominal rig pose).  The LM solve
/// runs on `ctx` (its pool and its registry).  (An adapter over
/// make_kspace_problem / finish_kspace_fit.)
KSpaceFitReport fit_kspace_model(
    const std::vector<BoardSample>& samples, const GmaModel& initial_guess,
    const opt::LevMarOptions& options = {},
    const runtime::Context& ctx = runtime::Context::default_ctx());

/// The Stage-1 fit as data — a residual function plus the packed initial
/// parameters — so an iteration-granular driver (opt::LmStepper inside
/// cal::CalibrationEngine) can run the same least-squares problem one LM
/// iteration at a time.  The residual function captures `samples` by
/// reference: the vector must outlive the returned problem.
struct KSpaceFitProblem {
  opt::ResidualFn residuals;
  std::vector<double> initial;
};

KSpaceFitProblem make_kspace_problem(const std::vector<BoardSample>& samples,
                                     const GmaModel& initial_guess);

/// Turns a finished LM solve over make_kspace_problem back into the
/// report fit_kspace_model returns (model unpack + error stats).
KSpaceFitReport finish_kspace_fit(const std::vector<BoardSample>& samples,
                                  const opt::LevMarResult& fit);

/// The customary initial guess: CAD-nominal galvo at the nominal board-rig
/// placement (board_distance in front of the board, boresight at center).
GmaModel nominal_kspace_guess(double board_distance);

}  // namespace cyclops::core

// Stage 2 (§4.2): jointly learn the 12 mapping parameters taking each
// GMA's K-space model into the common VR-space.
//
//  * M_tx (6 params): K_tx -> VR-space.  The TX is bolted to the ceiling,
//    so this is a constant pose.
//  * M_rx (6 params): K_rx -> the frame of the unknown headset point X
//    whose pose the VRH-T reports.  The RX GMA rides the headset, so its
//    VR-space model for a report Psi is Psi * M_rx applied to the K-space
//    model.
//
// Training data are 5-tuples (v1, v2, v3, v4, Psi): voltages found by the
// exhaustive aligner at assorted rig poses plus the VRH-T report.  The
// error is Lemma 1's coincidence residual: at perfect alignment the TX
// beam origin p_t must coincide with where the RX's imaginary beam lands
// on the TX mirror (tau_r), and vice versa.
#pragma once

#include <vector>

#include "core/gma_model.hpp"
#include "geom/pose.hpp"
#include "opt/levmar.hpp"
#include "sim/scene.hpp"
#include "util/rng.hpp"

namespace cyclops::core {

/// One Stage-2 training tuple.
struct AlignedSample {
  sim::Voltages voltages;
  geom::Pose psi;  ///< VRH-T report at alignment time.
};

/// Lemma-1 geometry for one sample under candidate mappings.
struct LemmaPoints {
  geom::Vec3 p_t;    ///< TX beam origin (on TX mirror 2).
  geom::Vec3 p_r;    ///< RX imaginary-beam origin (on RX mirror 2).
  geom::Vec3 tau_t;  ///< TX beam's hit on the RX mirror-2 plane.
  geom::Vec3 tau_r;  ///< RX imaginary beam's hit on the TX mirror-2 plane.
  bool valid = false;

  double coincidence_error() const {
    return geom::distance(p_t, tau_r) + geom::distance(p_r, tau_t);
  }
};

/// Computes Lemma-1 points for one sample given VR-space models.
LemmaPoints lemma_points(const GmaModel& tx_vr, const GmaModel& rx_vr,
                         const sim::Voltages& v);

struct MappingFitReport {
  geom::Pose map_tx;  ///< Learned K_tx -> VR.
  geom::Pose map_rx;  ///< Learned K_rx -> X-frame.
  double avg_coincidence_m = 0.0;  ///< Mean Lemma-1 residual over samples.
  double max_coincidence_m = 0.0;
  int optimizer_iterations = 0;
  bool converged = false;
};

/// The Stage-2 fit as data — the 6-residuals-per-sample Lemma-1 function
/// plus the packed 12-parameter initial guess — so an iteration-granular
/// driver (opt::LmStepper inside cal::CalibrationEngine or the online
/// recalibrator) can run the same problem one LM iteration at a time.
/// The residual function captures `tx_kspace`, `rx_kspace`, and `samples`
/// by reference: all three must outlive the returned problem.
struct MappingFitProblem {
  opt::ResidualFn residuals;
  std::vector<double> initial;
};

MappingFitProblem make_mapping_problem(const GmaModel& tx_kspace,
                                       const GmaModel& rx_kspace,
                                       const std::vector<AlignedSample>& samples,
                                       const geom::Pose& tx_guess,
                                       const geom::Pose& rx_guess);

/// Turns a finished LM solve over make_mapping_problem back into the
/// report fit_mapping returns (pose unpack + coincidence stats).
MappingFitReport finish_mapping_fit(const GmaModel& tx_kspace,
                                    const GmaModel& rx_kspace,
                                    const std::vector<AlignedSample>& samples,
                                    const opt::LevMarResult& fit);

/// Fits the 12 mapping parameters.  `tx_guess` / `rx_guess` come from
/// manual measurement of the deployment (a few cm / few degrees off).
/// The LM solve runs on `ctx` (its pool and its registry).  (An adapter
/// over make_mapping_problem / finish_mapping_fit.)
MappingFitReport fit_mapping(
    const GmaModel& tx_kspace, const GmaModel& rx_kspace,
    const std::vector<AlignedSample>& samples, const geom::Pose& tx_guess,
    const geom::Pose& rx_guess, const opt::LevMarOptions& options = {},
    const runtime::Context& ctx = runtime::Context::default_ctx());

/// Blind fit: no manual measurement at all.  Global search (simulated
/// annealing over the 12 parameters, seeded loosely from the Stage-2
/// sample geometry) followed by the usual LM polish.  Slower than
/// fit_mapping but needs zero deployment knowledge — the fully
/// self-calibrating install.
MappingFitReport fit_mapping_blind(
    const GmaModel& tx_kspace, const GmaModel& rx_kspace,
    const std::vector<AlignedSample>& samples, util::Rng& rng,
    const opt::LevMarOptions& options = {},
    const runtime::Context& ctx = runtime::Context::default_ctx());

}  // namespace cyclops::core

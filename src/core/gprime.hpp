// The reverse GMA function G' (§4.3): given a target point tau, find the
// voltages whose output beam passes through tau.
//
// Purely computational — no training — via the paper's iteration: probe G
// at (v1, v2), (v1+eps, v2), (v1, v2+eps); intersect the three beams with
// the plane P through tau perpendicular to the current beam; solve the
// 2x2 linear system for the voltage deltas that move the hit point onto
// tau; repeat until the deltas drop below the minimum GM voltage step.
// Converges in 2-4 iterations on real geometries.
#pragma once

#include "core/gma_model.hpp"
#include "geom/vec3.hpp"
#include "obs/metrics.hpp"
#include "runtime/context.hpp"

namespace cyclops::core {

struct GPrimeOptions {
  double probe_epsilon_volts = 0.05;
  /// Stop when both voltage deltas are below this (the paper uses the
  /// minimum GM voltage step).
  double tolerance_volts = 1e-3;
  int max_iterations = 12;
};

struct GPrimeResult {
  double v1 = 0.0;
  double v2 = 0.0;
  int iterations = 0;
  bool converged = false;
  /// Final distance between the beam and tau (m), for diagnostics.
  double miss_distance = 0.0;
};

/// Resumable G' iteration state: the in-progress result plus a halt flag
/// for the degenerate-geometry exits (invalid trace, missed plane,
/// singular 2x2 system) that abort a solve without convergence.
struct GPrimeState {
  GPrimeResult result;
  bool halted = false;
};

class GPrimeSolver {
 public:
  /// Convergence tallies (`gprime_*`) are hoisted once from
  /// `ctx.registry()` — the default context lands them in the shared
  /// registry exactly as before; a session context keeps them private to
  /// that session.  The registry must outlive the solver.
  explicit GPrimeSolver(
      GPrimeOptions options = {},
      const runtime::Context& ctx = runtime::Context::default_ctx());

  /// Solves for the voltages aiming `model`'s beam through `target`,
  /// starting from (v1_init, v2_init).  An adapter over
  /// begin()/advance(): one metrics record per solve, exactly as before.
  GPrimeResult solve(const GmaModel& model, const geom::Vec3& target,
                     double v1_init = 0.0, double v2_init = 0.0) const;

  /// Starts an iteration-granular solve at (v1_init, v2_init).
  GPrimeState begin(double v1_init, double v2_init) const;

  /// Runs one G' iteration.  Returns false when the solve can take no
  /// further iteration (converged, degenerate geometry, or the iteration
  /// budget is exhausted); `while (advance(...)) {}` reproduces solve()'s
  /// loop bit-exactly.  Records no metrics — the driver decides when a
  /// solve happened.
  bool advance(const GmaModel& model, const geom::Vec3& target,
               GPrimeState& state) const;

  /// Post-loop miss-distance diagnostic (skipped on halted solves, like
  /// the one-shot early returns).
  void finish(const GmaModel& model, const geom::Vec3& target,
              GPrimeState& state) const;

  const GPrimeOptions& options() const noexcept { return options_; }

 private:
  GPrimeOptions options_;
  // Metric handles (null when telemetry is compiled out); registry-owned,
  // so plain pointers keep the solver copyable.
  obs::Counter* solves_ = nullptr;
  obs::Counter* converged_ = nullptr;
  obs::Histogram* iterations_ = nullptr;
};

}  // namespace cyclops::core

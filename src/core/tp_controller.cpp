#include "core/tp_controller.hpp"

#include <algorithm>
#include <cmath>

namespace cyclops::core {

TpController::TpController(PointingSolver solver, TpConfig config,
                           sim::Voltages initial_voltages)
    : solver_(std::move(solver)),
      config_(config),
      commanded_(initial_voltages),
      predictor_(config.predictor) {}

std::optional<PendingCommand> TpController::on_report(
    const tracking::PoseReport& report) {
  ++reports_;

  geom::Pose target_pose = report.pose;
  if (config_.predict_pose) {
    predictor_.update(report);
    // Aim for where the headset will be when the voltages actually apply,
    // half a report period past that on average.
    const util::SimTimeUs apply_at =
        report.delivery_time + util::us_from_s(config_.pointing_latency_s());
    if (const auto predicted = predictor_.predict(apply_at + 6000)) {
      target_pose = *predicted;
    }
  }

  const PointingResult result = solver_.solve(target_pose, commanded_);
  total_iterations_ += result.iterations;
  if (!result.converged) {
    ++failures_;
    return std::nullopt;
  }

  sim::Voltages v = result.voltages;
  v.tx1 = config_.daq.quantize(v.tx1);
  v.tx2 = config_.daq.quantize(v.tx2);
  v.rx1 = config_.daq.quantize(v.rx1);
  v.rx2 = config_.daq.quantize(v.rx2);

  // Settle time scales with the largest commanded step.
  const double step = std::max(
      {std::abs(v.tx1 - commanded_.tx1), std::abs(v.tx2 - commanded_.tx2),
       std::abs(v.rx1 - commanded_.rx1), std::abs(v.rx2 - commanded_.rx2)});
  commanded_ = v;

  PendingCommand cmd;
  cmd.apply_time =
      report.delivery_time +
      util::us_from_s(config_.daq.conversion_latency_s +
                      config_.servo.settle_time_s(step) + config_.compute_s);
  cmd.voltages = v;
  return cmd;
}

double TpController::avg_pointing_iterations() const noexcept {
  return reports_ > 0 ? static_cast<double>(total_iterations_) / reports_
                      : 0.0;
}

}  // namespace cyclops::core

#include "core/evaluation.hpp"

#include <algorithm>
#include <cmath>

#include "geom/ray.hpp"

namespace cyclops::core {
namespace {

void accumulate(ModelErrorStats& stats, double error) {
  stats.avg_m += error;
  stats.max_m = std::max(stats.max_m, error);
  ++stats.samples;
}

void finalize(ModelErrorStats& stats) {
  if (stats.samples > 0) stats.avg_m /= stats.samples;
}

std::optional<geom::Vec3> hit_on_plane(const std::optional<geom::Ray>& ray,
                                       const geom::Plane& plane) {
  if (!ray) return std::nullopt;
  const auto t = geom::intersect(*ray, plane, /*forward_only=*/false);
  if (!t) return std::nullopt;
  return ray->at(*t);
}

}  // namespace

CombinedErrors evaluate_combined_errors(sim::Prototype& proto,
                                        const CalibrationResult& calib,
                                        int n_test, double pose_extent,
                                        double angle_extent, util::Rng& rng) {
  CombinedErrors errors;
  ExhaustiveAligner aligner;
  const geom::Pose world_from_vr = proto.vr_from_world.inverse();
  const GmaModel tx_model_vr =
      calib.tx_stage1.model.transformed(calib.mapping.map_tx);

  sim::Voltages hint{};
  for (int i = 0; i < n_test; ++i) {
    const geom::Pose pose = random_rig_pose(
        proto.nominal_rig_pose, pose_extent, angle_extent, rng);
    proto.scene.set_rig_pose(pose);
    // Every re-positioning flexes the breadboard slightly — the physical
    // reason the paper gives for the RX's larger combined error.
    proto.apply_rig_flex(rng);
    const AlignResult aligned = aligner.align(proto.scene, hint);
    if (!aligned.converged()) continue;
    hint = aligned.voltages;
    const sim::Voltages& v = aligned.voltages;
    const tracking::PoseReport report = proto.tracker.report(0, pose);

    // Learned-chain beams, re-expressed in the world for comparison.
    const GmaModel rx_model_vr =
        calib.rx_stage1.model.transformed(report.pose * calib.mapping.map_rx);
    const auto model_ray_t = tx_model_vr.trace(v.tx1, v.tx2);
    const auto model_ray_r = rx_model_vr.trace(v.rx1, v.rx2);

    // Physical beams.
    const auto phys_ray_t = proto.scene.tx().trace_parent(v.tx1, v.tx2);
    const galvo::GmaPhysical rx_world = proto.scene.rx_world();
    const auto phys_ray_r = rx_world.capture_ray(v.rx1, v.rx2);
    if (!model_ray_t || !model_ray_r || !phys_ray_t || !phys_ray_r) continue;

    // Compare landing points on the *true* opposite mirror-2 planes.
    const geom::Plane rx_plane = rx_world.mirror2_plane_parent(v.rx2);
    const geom::Plane tx_plane =
        proto.scene.tx().mirror2_plane_parent(v.tx2);

    const auto model_tau_t =
        hit_on_plane(world_from_vr.apply(*model_ray_t), rx_plane);
    const auto phys_tau_t = hit_on_plane(*phys_ray_t, rx_plane);
    if (model_tau_t && phys_tau_t) {
      accumulate(errors.tx, geom::distance(*model_tau_t, *phys_tau_t));
    }

    const auto model_tau_r =
        hit_on_plane(world_from_vr.apply(*model_ray_r), tx_plane);
    const auto phys_tau_r = hit_on_plane(*phys_ray_r, tx_plane);
    if (model_tau_r && phys_tau_r) {
      accumulate(errors.rx, geom::distance(*model_tau_r, *phys_tau_r));
    }
  }
  proto.scene.set_rig_pose(proto.nominal_rig_pose);
  finalize(errors.tx);
  finalize(errors.rx);
  return errors;
}

std::vector<TpAccuracySample> run_lock_tests(sim::Prototype& proto,
                                             const PointingSolver& solver,
                                             int n_tests, double pose_extent,
                                             double angle_extent,
                                             util::Rng& rng) {
  std::vector<TpAccuracySample> samples;
  ExhaustiveAligner aligner;
  sim::Voltages hint{};
  for (int i = 0; i < n_tests; ++i) {
    const geom::Pose pose = random_rig_pose(
        proto.nominal_rig_pose, pose_extent, angle_extent, rng);
    proto.scene.set_rig_pose(pose);
    proto.apply_rig_flex(rng);

    TpAccuracySample sample;
    const tracking::PoseReport report = proto.tracker.report(0, pose);
    const PointingResult pointed = solver.solve(report.pose, hint);
    sample.pointing_iterations = pointed.iterations;
    sample.power_dbm = proto.scene.received_power_dbm(pointed.voltages);
    sample.link_up =
        sample.power_dbm >= proto.scene.config().sfp.rx_sensitivity_dbm;

    const AlignResult optimal = aligner.align(proto.scene, pointed.voltages);
    sample.optimal_power_dbm = optimal.power_dbm;
    hint = pointed.voltages;
    samples.push_back(sample);
  }
  proto.scene.set_rig_pose(proto.nominal_rig_pose);
  return samples;
}

}  // namespace cyclops::core

// End-to-end calibration pipeline: Stage 1 for both GMAs, Stage-2 sample
// collection with the exhaustive aligner, and the joint mapping fit.
// This is the "deployment" procedure of §4: done once per install (plus
// re-running Stage 2 on re-deployment or VRH-T drift).
#pragma once

#include "core/exhaustive_aligner.hpp"
#include "core/kspace_calibration.hpp"
#include "core/mapping_calibration.hpp"
#include "core/pointing.hpp"
#include "sim/prototype.hpp"
#include "util/rng.hpp"

namespace cyclops::core {

struct CalibrationConfig {
  BoardConfig board;
  /// Number of aligned-link tuples for Stage 2 (~30 in the paper).
  int stage2_samples = 30;
  /// Manual-measurement error of the deployment used to seed Stage 2.
  double guess_position_sigma = 0.03;
  double guess_angle_sigma = 0.05;
  /// Rig-pose excursions around nominal while collecting Stage-2 samples.
  /// The angle extent keeps the needed GM voltages inside the region the
  /// Stage-1 board samples actually covered (the board subtends ~±3 V on
  /// the second mirror at 1.5 m).
  double pose_position_extent = 0.20;
  double pose_angle_extent = 0.12;
  AlignerOptions aligner;
  opt::LevMarOptions stage1_options;
  opt::LevMarOptions stage2_options;
  /// Self-calibrating install: ignore the manual-measurement guesses and
  /// solve Stage 2 globally (multi-start over SO(3); see
  /// fit_mapping_blind).  Slower, needs zero deployment knowledge.
  bool blind_stage2 = false;
};

struct CalibrationResult {
  KSpaceFitReport tx_stage1;
  KSpaceFitReport rx_stage1;
  MappingFitReport mapping;
  std::vector<AlignedSample> stage2_samples;

  /// `ctx` routes the solver's G' telemetry (default: shared registry).
  PointingSolver make_pointing_solver(
      PointingOptions options = {},
      const runtime::Context& ctx = runtime::Context::default_ctx()) const {
    return PointingSolver(tx_stage1.model, rx_stage1.model, mapping.map_tx,
                          mapping.map_rx, options, ctx);
  }
};

/// Draws a random rig pose in the Stage-2 excursion box around nominal.
geom::Pose random_rig_pose(const geom::Pose& nominal, double position_extent,
                           double angle_extent, util::Rng& rng);

/// Draws a small random pose perturbation (axis from 3 normals, angle
/// N(0, angle_sigma), translation N(0, pos_sigma) per axis) — the model
/// of manual-measurement error used to seed and retry the Stage-2 fit.
geom::Pose random_pose_error(util::Rng& rng, double pos_sigma,
                             double angle_sigma);

/// Runs the full pipeline on a prototype.  Leaves the scene at the
/// nominal rig pose.  Deterministic given `rng`.  Every optimizer and
/// aligner inside runs on `ctx` — pool for the fan-out, registry for the
/// `lm_*` telemetry; the default context reproduces the old
/// global-pool/global-registry behavior.
///
/// Defined in cyclops_cal (cal/engine.cpp) as a thin adapter that drives
/// cal::CalibrationEngine to completion — bit-exact with the historical
/// one-shot pipeline, including the caller-visible `rng` stream state.
CalibrationResult calibrate_prototype(
    sim::Prototype& proto, const CalibrationConfig& config, util::Rng& rng,
    const runtime::Context& ctx = runtime::Context::default_ctx());

}  // namespace cyclops::core

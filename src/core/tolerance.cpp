#include "core/tolerance.hpp"

#include <algorithm>
#include <cmath>

#include "core/exhaustive_aligner.hpp"
#include "util/units.hpp"

namespace cyclops::core {
namespace {

/// Rigid rotation of `pose` about the world-space `pivot` by `angle`
/// around `axis` — what a rotation stage under the assembly does.
geom::Pose rotate_about(const geom::Pose& pose, const geom::Vec3& pivot,
                        const geom::Vec3& axis, double angle) {
  const geom::Mat3 r = geom::Mat3::rotation(axis, angle);
  return {r * pose.rotation(), pivot + r * (pose.translation() - pivot)};
}

/// Binary-searches the largest perturbation magnitude in [0, hi] for which
/// `usable(magnitude)` still holds.  usable(0) must be true.
template <typename Fn>
double largest_usable(double hi, const Fn& usable) {
  double lo = 0.0;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (usable(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Worst-axis tolerance: minimum over +/- perturbations about two
/// transverse axes.
template <typename Fn>
double worst_axis_tolerance(double hi, const Fn& usable_with_axis_sign) {
  double worst = hi;
  for (int axis = 0; axis < 2; ++axis) {
    for (double sign : {1.0, -1.0}) {
      const double tol = largest_usable(hi, [&](double magnitude) {
        return usable_with_axis_sign(axis, sign * magnitude);
      });
      worst = std::min(worst, tol);
    }
  }
  return worst;
}

}  // namespace

double aligned_peak_power_dbm(sim::Prototype& proto) {
  ExhaustiveAligner aligner;
  return aligner.align(proto.scene, {}).power_dbm;
}

double tx_angular_tolerance(sim::Prototype& proto) {
  ExhaustiveAligner aligner;
  const AlignResult aligned = aligner.align(proto.scene, {});
  const geom::Pose tx_mount = proto.scene.tx().mount();
  const geom::Vec3 pivot =
      tx_mount.apply(proto.tx_galvo_truth.q2);  // the GM mirror center
  const double sensitivity = proto.scene.config().sfp.rx_sensitivity_dbm;

  const auto usable = [&](int axis, double angle) {
    const geom::Vec3 world_axis = tx_mount.apply_dir(
        axis == 0 ? geom::Vec3{1, 0, 0} : geom::Vec3{0, 1, 0});
    proto.scene.set_tx_mount(rotate_about(tx_mount, pivot, world_axis, angle));
    const double power = proto.scene.received_power_dbm(aligned.voltages);
    proto.scene.set_tx_mount(tx_mount);
    return power >= sensitivity;
  };
  return worst_axis_tolerance(util::mrad_to_rad(80.0), usable);
}

double rx_angular_tolerance(sim::Prototype& proto) {
  ExhaustiveAligner aligner;
  const AlignResult aligned = aligner.align(proto.scene, {});
  const geom::Pose rig = proto.scene.rig_pose();
  const geom::Vec3 pivot =
      (rig * proto.rx_mount_in_rig).apply(proto.rx_galvo_truth.q2);
  const double sensitivity = proto.scene.config().sfp.rx_sensitivity_dbm;

  const auto usable = [&](int axis, double angle) {
    const geom::Vec3 world_axis = rig.apply_dir(
        axis == 0 ? geom::Vec3{1, 0, 0} : geom::Vec3{0, 1, 0});
    proto.scene.set_rig_pose(rotate_about(rig, pivot, world_axis, angle));
    const double power = proto.scene.received_power_dbm(aligned.voltages);
    proto.scene.set_rig_pose(rig);
    return power >= sensitivity;
  };
  return worst_axis_tolerance(util::mrad_to_rad(80.0), usable);
}

double rx_lateral_tolerance(sim::Prototype& proto) {
  ExhaustiveAligner aligner;
  const AlignResult aligned = aligner.align(proto.scene, {});
  const geom::Pose rig = proto.scene.rig_pose();
  const double sensitivity = proto.scene.config().sfp.rx_sensitivity_dbm;

  const auto usable = [&](int axis, double offset) {
    const geom::Vec3 world_axis = rig.apply_dir(
        axis == 0 ? geom::Vec3{1, 0, 0} : geom::Vec3{0, 1, 0});
    proto.scene.set_rig_pose(
        {rig.rotation(), rig.translation() + world_axis * offset});
    const double power = proto.scene.received_power_dbm(aligned.voltages);
    proto.scene.set_rig_pose(rig);
    return power >= sensitivity;
  };
  return worst_axis_tolerance(30e-3, usable);
}

}  // namespace cyclops::core

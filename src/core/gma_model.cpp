#include "core/gma_model.hpp"

#include "geom/mat3.hpp"

namespace cyclops::core {

geom::Plane GmaModel::mirror2_plane(double v2) const {
  const geom::Mat3 rot =
      geom::Mat3::rotation(params_.r2, params_.theta1 * v2);
  return {params_.q2, rot * params_.n2};
}

GmaModel GmaModel::with_frozen_origin() const {
  GmaModel frozen = *this;
  if (const auto at_zero = galvo::trace_ideal(params_, 0.0, 0.0)) {
    frozen.frozen_origin_ = at_zero->origin;
  }
  return frozen;
}

GmaModel GmaModel::transformed(const geom::Pose& map) const {
  galvo::GalvoParams p = params_;
  p.p0 = map.apply(params_.p0);
  p.x0 = map.apply_dir(params_.x0);
  p.q1 = map.apply(params_.q1);
  p.n1 = map.apply_dir(params_.n1);
  p.r1 = map.apply_dir(params_.r1);
  p.q2 = map.apply(params_.q2);
  p.n2 = map.apply_dir(params_.n2);
  p.r2 = map.apply_dir(params_.r2);
  GmaModel out(p);
  if (frozen_origin_) out.frozen_origin_ = map.apply(*frozen_origin_);
  return out;
}

}  // namespace cyclops::core

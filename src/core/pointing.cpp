#include "core/pointing.hpp"

#include <algorithm>
#include <cmath>

#include "core/mapping_calibration.hpp"

namespace cyclops::core {

PointingSolver::PointingSolver(GmaModel tx_kspace, GmaModel rx_kspace,
                               geom::Pose map_tx, geom::Pose map_rx,
                               PointingOptions options,
                               const runtime::Context& ctx)
    : rx_kspace_(std::move(rx_kspace)),
      tx_vr_(tx_kspace.transformed(map_tx)),
      map_tx_(std::move(map_tx)),
      map_rx_(std::move(map_rx)),
      options_(options),
      gprime_(options.gprime, ctx) {}

PointingResult PointingSolver::solve(const geom::Pose& psi,
                                     const sim::Voltages& hint) const {
  PointingResult result;
  const GmaModel rx = rx_vr(psi);
  sim::Voltages v = hint;
  result.voltages = v;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    result.iterations = iter + 1;

    const auto ray_t = tx_vr_.trace(v.tx1, v.tx2);
    const auto ray_r = rx.trace(v.rx1, v.rx2);
    if (!ray_t || !ray_r) return result;

    // Aim each GMA at the other's current origin point.
    const auto tx_step = gprime_.solve(tx_vr_, ray_r->origin, v.tx1, v.tx2);
    const auto rx_step = gprime_.solve(rx, ray_t->origin, v.rx1, v.rx2);
    if (!tx_step.converged || !rx_step.converged) return result;

    const double delta =
        std::max({std::abs(tx_step.v1 - v.tx1), std::abs(tx_step.v2 - v.tx2),
                  std::abs(rx_step.v1 - v.rx1), std::abs(rx_step.v2 - v.rx2)});
    v = {tx_step.v1, tx_step.v2, rx_step.v1, rx_step.v2};
    result.voltages = v;
    if (delta < options_.tolerance_volts) {
      result.converged = true;
      break;
    }
  }

  result.voltages = v;
  const LemmaPoints pts = lemma_points(tx_vr_, rx, v);
  result.model_residual_m = pts.valid ? pts.coincidence_error() : 1.0;
  return result;
}

}  // namespace cyclops::core

#include "core/persistence.hpp"

#include <algorithm>
#include <fstream>
#include <span>
#include <sstream>
#include <stdexcept>

namespace cyclops::core {
namespace {

constexpr const char* kMagic = "cyclops-calibration v1";

void write_values(std::ostream& out, const char* key,
                  std::span<const double> values) {
  out << key;
  out.precision(17);
  for (double v : values) out << ' ' << v;
  out << '\n';
}

std::vector<double> expect_line(std::istream& in, const std::string& key,
                                std::size_t count) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("calibration file truncated before " + key);
  }
  std::istringstream ss(line);
  std::string found_key;
  ss >> found_key;
  if (found_key != key) {
    throw std::runtime_error("calibration file: expected '" + key +
                             "', found '" + found_key + "'");
  }
  std::vector<double> values;
  double v = 0.0;
  while (ss >> v) values.push_back(v);
  if (values.size() != count) {
    throw std::runtime_error("calibration file: wrong arity for " + key);
  }
  return values;
}

}  // namespace

void save_calibration(const std::filesystem::path& path,
                      const CalibrationResult& calibration) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << kMagic << '\n';
  write_values(out, "tx_model", calibration.tx_stage1.model.params().pack());
  write_values(out, "rx_model", calibration.rx_stage1.model.params().pack());
  write_values(out, "map_tx", calibration.mapping.map_tx.params());
  write_values(out, "map_rx", calibration.mapping.map_rx.params());
  const double stats[6] = {
      calibration.tx_stage1.avg_error_m, calibration.tx_stage1.max_error_m,
      calibration.rx_stage1.avg_error_m, calibration.rx_stage1.max_error_m,
      calibration.mapping.avg_coincidence_m,
      calibration.mapping.max_coincidence_m};
  write_values(out, "stats", stats);
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

CalibrationResult load_calibration(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) {
    throw std::runtime_error("not a cyclops calibration file: " +
                             path.string());
  }

  const auto to_model = [](const std::vector<double>& values) {
    std::array<double, galvo::GalvoParams::kParamCount> packed{};
    std::copy(values.begin(), values.end(), packed.begin());
    return GmaModel(galvo::GalvoParams::unpack(packed));
  };
  const auto to_pose = [](const std::vector<double>& values) {
    std::array<double, 6> params{};
    std::copy(values.begin(), values.end(), params.begin());
    return geom::Pose::from_params(params);
  };

  const auto tx_values =
      expect_line(in, "tx_model", galvo::GalvoParams::kParamCount);
  const auto rx_values =
      expect_line(in, "rx_model", galvo::GalvoParams::kParamCount);
  const auto map_tx = expect_line(in, "map_tx", 6);
  const auto map_rx = expect_line(in, "map_rx", 6);
  const auto stats = expect_line(in, "stats", 6);

  CalibrationResult result{
      KSpaceFitReport{to_model(tx_values), stats[0], stats[1], 0, true},
      KSpaceFitReport{to_model(rx_values), stats[2], stats[3], 0, true},
      MappingFitReport{to_pose(map_tx), to_pose(map_rx), stats[4], stats[5],
                       0, true},
      {}};
  return result;
}

}  // namespace cyclops::core

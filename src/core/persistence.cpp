#include "core/persistence.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cyclops::core {
namespace {

constexpr const char* kMagicV1 = "cyclops-calibration v1";
constexpr const char* kMagicV2 = "cyclops-calibration v2";

}  // namespace

namespace persist {

void write_values(std::ostream& out, const char* key,
                  std::span<const double> values) {
  out << key;
  out.precision(17);
  for (double v : values) out << ' ' << v;
  out << '\n';
}

void write_u64_values(std::ostream& out, const char* key,
                      std::span<const std::uint64_t> values) {
  out << key;
  for (std::uint64_t v : values) out << ' ' << v;
  out << '\n';
}

[[noreturn]] void fail(int line_number, const std::string& what) {
  throw std::runtime_error("calibration file line " +
                           std::to_string(line_number) + ": " + what);
}

std::vector<double> expect_line(std::istream& in, const std::string& key,
                                std::size_t count, int& line_number) {
  std::string line;
  if (!std::getline(in, line)) {
    fail(line_number + 1, "file truncated, expected '" + key + "' record");
  }
  ++line_number;
  std::istringstream ss(line);
  std::string found_key;
  ss >> found_key;
  if (found_key != key) {
    fail(line_number,
         "expected '" + key + "' record, found '" + found_key + "'");
  }
  std::vector<double> values;
  double v = 0.0;
  while (ss >> v) {
    if (!std::isfinite(v)) {
      fail(line_number, "field " + std::to_string(values.size() + 1) +
                            " of " + key + " is not finite");
    }
    values.push_back(v);
  }
  if (!ss.eof()) {
    // The stream stopped on a token that is not a double (e.g. "NaN" spelled
    // oddly, or stray text) before the line ran out.
    fail(line_number, "field " + std::to_string(values.size() + 1) + " of " +
                          key + " is not a number");
  }
  if (values.size() != count) {
    fail(line_number, "expected " + std::to_string(count) + " values for " +
                          key + ", got " + std::to_string(values.size()));
  }
  return values;
}

std::vector<std::uint64_t> expect_u64_line(std::istream& in,
                                           const std::string& key,
                                           std::size_t count,
                                           int& line_number) {
  std::string line;
  if (!std::getline(in, line)) {
    fail(line_number + 1, "file truncated, expected '" + key + "' record");
  }
  ++line_number;
  std::istringstream ss(line);
  std::string found_key;
  ss >> found_key;
  if (found_key != key) {
    fail(line_number,
         "expected '" + key + "' record, found '" + found_key + "'");
  }
  // Tokens go through from_chars, not the istream extractor: RNG words
  // above 2^53 would silently lose bits through a double, and istream's
  // unsigned extraction accepts '-' and wraps.
  std::vector<std::uint64_t> values;
  std::string token;
  while (ss >> token) {
    const int field = static_cast<int>(values.size()) + 1;
    std::uint64_t v = 0;
    const auto* first = token.data();
    const auto* last = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec != std::errc{} || ptr != last) {
      fail(line_number, "field " + std::to_string(field) + " of " + key +
                            " is not an unsigned 64-bit integer");
    }
    values.push_back(v);
  }
  if (values.size() != count) {
    fail(line_number, "expected " + std::to_string(count) + " values for " +
                          key + ", got " + std::to_string(values.size()));
  }
  return values;
}

}  // namespace persist

using persist::expect_line;
using persist::fail;
using persist::write_values;

void save_calibration(const std::filesystem::path& path,
                      const CalibrationResult& calibration) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << kMagicV2 << '\n';
  write_values(out, "tx_model", calibration.tx_stage1.model.params().pack());
  write_values(out, "rx_model", calibration.rx_stage1.model.params().pack());
  write_values(out, "map_tx", calibration.mapping.map_tx.params());
  write_values(out, "map_rx", calibration.mapping.map_rx.params());
  const double stats[6] = {
      calibration.tx_stage1.avg_error_m, calibration.tx_stage1.max_error_m,
      calibration.rx_stage1.avg_error_m, calibration.rx_stage1.max_error_m,
      calibration.mapping.avg_coincidence_m,
      calibration.mapping.max_coincidence_m};
  write_values(out, "stats", stats);
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

CalibrationResult load_calibration(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::string magic;
  std::getline(in, magic);
  int line_number = 1;
  // v2 is a header bump (same records); v1 files keep loading.
  if (magic != kMagicV1 && magic != kMagicV2) {
    fail(line_number, "not a cyclops calibration header: '" + magic +
                          "' (expected '" + kMagicV1 + "' or '" + kMagicV2 +
                          "')");
  }

  const auto to_model = [](const std::vector<double>& values) {
    std::array<double, galvo::GalvoParams::kParamCount> packed{};
    std::copy(values.begin(), values.end(), packed.begin());
    return GmaModel(galvo::GalvoParams::unpack(packed));
  };
  const auto to_pose = [](const std::vector<double>& values) {
    std::array<double, 6> params{};
    std::copy(values.begin(), values.end(), params.begin());
    return geom::Pose::from_params(params);
  };

  const auto tx_values = expect_line(in, "tx_model",
                                     galvo::GalvoParams::kParamCount,
                                     line_number);
  const auto rx_values = expect_line(in, "rx_model",
                                     galvo::GalvoParams::kParamCount,
                                     line_number);
  const auto map_tx = expect_line(in, "map_tx", 6, line_number);
  const auto map_rx = expect_line(in, "map_rx", 6, line_number);
  const auto stats = expect_line(in, "stats", 6, line_number);

  CalibrationResult result{
      KSpaceFitReport{to_model(tx_values), stats[0], stats[1], 0, true},
      KSpaceFitReport{to_model(rx_values), stats[2], stats[3], 0, true},
      MappingFitReport{to_pose(map_tx), to_pose(map_rx), stats[4], stats[5],
                       0, true},
      {}};
  return result;
}

}  // namespace cyclops::core

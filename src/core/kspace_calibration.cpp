#include "core/kspace_calibration.hpp"

#include <algorithm>
#include <cmath>

#include "galvo/factory.hpp"
#include "geom/ray.hpp"

namespace cyclops::core {
namespace {

const geom::Plane kBoardPlane{{0, 0, 0}, {0, 0, 1}};

std::optional<geom::Vec3> board_hit(const GmaModel& model, double v1,
                                    double v2) {
  const auto ray = model.trace(v1, v2);
  if (!ray) return std::nullopt;
  const auto t = geom::intersect(*ray, kBoardPlane, /*forward_only=*/false);
  if (!t) return std::nullopt;
  return ray->at(*t);
}

}  // namespace

std::vector<BoardSample> collect_board_samples(
    const galvo::GalvoMirror& physical_galvo, const geom::Pose& k_from_gma,
    const BoardConfig& config, util::Rng& rng, const runtime::Context& ctx) {
  // The physical unit, as a geometric model in the board (K) frame.  This
  // stands in for the experimenter's closed visual loop: they can steer the
  // real beam onto a real grid point without knowing any parameters.
  const GmaModel truth_in_k =
      GmaModel(physical_galvo.params()).transformed(k_from_gma);
  const GPrimeSolver solver(GPrimeOptions{}, ctx);

  std::vector<BoardSample> samples;
  double v1 = 0.0, v2 = 0.0;  // warm start from the previous grid point
  for (int i = 1; i < config.cells_x; ++i) {
    for (int j = 1; j < config.cells_y; ++j) {
      const double gx =
          (i - config.cells_x / 2.0) * config.cell_size;
      const double gy =
          (j - config.cells_y / 2.0) * config.cell_size;
      // The beam lands within hand-alignment accuracy of the grid point.
      const geom::Vec3 achieved{gx + rng.normal(0.0, config.alignment_sigma),
                                gy + rng.normal(0.0, config.alignment_sigma),
                                0.0};
      const auto result = solver.solve(truth_in_k, achieved, v1, v2);
      if (!result.converged) continue;
      if (!physical_galvo.voltage_in_range(result.v1) ||
          !physical_galvo.voltage_in_range(result.v2)) {
        continue;  // grid point outside the coverage cone
      }
      v1 = result.v1;
      v2 = result.v2;
      samples.push_back({gx, gy, v1, v2});
    }
  }
  return samples;
}

double board_error(const GmaModel& model, const BoardSample& sample) {
  const auto hit = board_hit(model, sample.v1, sample.v2);
  if (!hit) return 1.0;  // 1 m penalty for a degenerate trace
  const double dx = hit->x - sample.x;
  const double dy = hit->y - sample.y;
  return std::sqrt(dx * dx + dy * dy);
}

KSpaceFitReport fit_kspace_model(const std::vector<BoardSample>& samples,
                                 const GmaModel& initial_guess,
                                 const opt::LevMarOptions& options,
                                 const runtime::Context& ctx) {
  const auto residual_fn = [&samples](std::span<const double> params,
                                      std::vector<double>& residuals) {
    std::array<double, galvo::GalvoParams::kParamCount> packed{};
    std::copy(params.begin(), params.end(), packed.begin());
    const GmaModel model(galvo::GalvoParams::unpack(packed));
    residuals.resize(samples.size() * 2);
    for (std::size_t s = 0; s < samples.size(); ++s) {
      const auto hit = board_hit(model, samples[s].v1, samples[s].v2);
      if (hit) {
        residuals[2 * s] = hit->x - samples[s].x;
        residuals[2 * s + 1] = hit->y - samples[s].y;
      } else {
        residuals[2 * s] = residuals[2 * s + 1] = 1.0;
      }
    }
  };

  const auto packed = initial_guess.params().pack();
  const auto fit = opt::levenberg_marquardt(
      residual_fn, {packed.begin(), packed.end()}, options, ctx);

  std::array<double, galvo::GalvoParams::kParamCount> out{};
  std::copy(fit.params.begin(), fit.params.end(), out.begin());
  KSpaceFitReport report{GmaModel(galvo::GalvoParams::unpack(out)), 0.0, 0.0,
                         fit.iterations, fit.converged};
  for (const auto& s : samples) {
    const double e = board_error(report.model, s);
    report.avg_error_m += e;
    report.max_error_m = std::max(report.max_error_m, e);
  }
  if (!samples.empty()) {
    report.avg_error_m /= static_cast<double>(samples.size());
  }
  return report;
}

GmaModel nominal_kspace_guess(double board_distance) {
  const geom::Pose nominal_mount{geom::Mat3::identity(),
                                 {0.0, 0.0, board_distance}};
  return GmaModel(galvo::nominal_params()).transformed(nominal_mount);
}

}  // namespace cyclops::core

#include "core/kspace_calibration.hpp"

#include <algorithm>
#include <cmath>

#include "galvo/factory.hpp"
#include "geom/ray.hpp"

namespace cyclops::core {
namespace {

const geom::Plane kBoardPlane{{0, 0, 0}, {0, 0, 1}};

std::optional<geom::Vec3> board_hit(const GmaModel& model, double v1,
                                    double v2) {
  const auto ray = model.trace(v1, v2);
  if (!ray) return std::nullopt;
  const auto t = geom::intersect(*ray, kBoardPlane, /*forward_only=*/false);
  if (!t) return std::nullopt;
  return ray->at(*t);
}

}  // namespace

BoardSampleCollector::BoardSampleCollector(
    const galvo::GalvoMirror& physical_galvo, const geom::Pose& k_from_gma,
    const BoardConfig& config, const runtime::Context& ctx)
    // The physical unit, as a geometric model in the board (K) frame.  This
    // stands in for the experimenter's closed visual loop: they can steer
    // the real beam onto a real grid point without knowing any parameters.
    : galvo_(&physical_galvo),
      truth_in_k_(GmaModel(physical_galvo.params()).transformed(k_from_gma)),
      config_(config),
      solver_(GPrimeOptions{}, ctx) {
  // A board with no interior columns has no grid points at all (the
  // one-shot loop's inner `for j` never runs): start done.
  if (config_.cells_y <= 1) state_.i = config_.cells_x;
}

bool BoardSampleCollector::step(util::Rng& rng) {
  if (done()) return false;
  const int i = state_.i;
  const int j = state_.j;
  const double gx = (i - config_.cells_x / 2.0) * config_.cell_size;
  const double gy = (j - config_.cells_y / 2.0) * config_.cell_size;
  // The beam lands within hand-alignment accuracy of the grid point.
  const geom::Vec3 achieved{gx + rng.normal(0.0, config_.alignment_sigma),
                            gy + rng.normal(0.0, config_.alignment_sigma),
                            0.0};
  const auto result =
      solver_.solve(truth_in_k_, achieved, state_.v1, state_.v2);
  const bool usable = result.converged &&
                      galvo_->voltage_in_range(result.v1) &&
                      galvo_->voltage_in_range(result.v2);
  if (usable) {
    state_.v1 = result.v1;
    state_.v2 = result.v2;
    samples_.push_back({gx, gy, state_.v1, state_.v2});
  }
  // Advance the grid cursor in the one-shot loop's (i, j) order.
  if (++state_.j >= config_.cells_y) {
    state_.j = 1;
    ++state_.i;
  }
  return !done();
}

std::vector<BoardSample> collect_board_samples(
    const galvo::GalvoMirror& physical_galvo, const geom::Pose& k_from_gma,
    const BoardConfig& config, util::Rng& rng, const runtime::Context& ctx) {
  BoardSampleCollector collector(physical_galvo, k_from_gma, config, ctx);
  while (collector.step(rng)) {
  }
  return collector.take_samples();
}

double board_error(const GmaModel& model, const BoardSample& sample) {
  const auto hit = board_hit(model, sample.v1, sample.v2);
  if (!hit) return 1.0;  // 1 m penalty for a degenerate trace
  const double dx = hit->x - sample.x;
  const double dy = hit->y - sample.y;
  return std::sqrt(dx * dx + dy * dy);
}

KSpaceFitProblem make_kspace_problem(const std::vector<BoardSample>& samples,
                                     const GmaModel& initial_guess) {
  KSpaceFitProblem problem;
  problem.residuals = [&samples](std::span<const double> params,
                                 std::vector<double>& residuals) {
    std::array<double, galvo::GalvoParams::kParamCount> packed{};
    std::copy(params.begin(), params.end(), packed.begin());
    const GmaModel model(galvo::GalvoParams::unpack(packed));
    residuals.resize(samples.size() * 2);
    for (std::size_t s = 0; s < samples.size(); ++s) {
      const auto hit = board_hit(model, samples[s].v1, samples[s].v2);
      if (hit) {
        residuals[2 * s] = hit->x - samples[s].x;
        residuals[2 * s + 1] = hit->y - samples[s].y;
      } else {
        residuals[2 * s] = residuals[2 * s + 1] = 1.0;
      }
    }
  };
  const auto packed = initial_guess.params().pack();
  problem.initial.assign(packed.begin(), packed.end());
  return problem;
}

KSpaceFitReport finish_kspace_fit(const std::vector<BoardSample>& samples,
                                  const opt::LevMarResult& fit) {
  std::array<double, galvo::GalvoParams::kParamCount> out{};
  std::copy(fit.params.begin(), fit.params.end(), out.begin());
  KSpaceFitReport report{GmaModel(galvo::GalvoParams::unpack(out)), 0.0, 0.0,
                         fit.iterations, fit.converged};
  for (const auto& s : samples) {
    const double e = board_error(report.model, s);
    report.avg_error_m += e;
    report.max_error_m = std::max(report.max_error_m, e);
  }
  if (!samples.empty()) {
    report.avg_error_m /= static_cast<double>(samples.size());
  }
  return report;
}

KSpaceFitReport fit_kspace_model(const std::vector<BoardSample>& samples,
                                 const GmaModel& initial_guess,
                                 const opt::LevMarOptions& options,
                                 const runtime::Context& ctx) {
  const KSpaceFitProblem problem = make_kspace_problem(samples, initial_guess);
  const auto fit = opt::levenberg_marquardt(problem.residuals, problem.initial,
                                            options, ctx);
  return finish_kspace_fit(samples, fit);
}

GmaModel nominal_kspace_guess(double board_distance) {
  const geom::Pose nominal_mount{geom::Mat3::identity(),
                                 {0.0, 0.0, board_distance}};
  return GmaModel(galvo::nominal_params()).transformed(nominal_mount);
}

}  // namespace cyclops::core

#include "core/exhaustive_aligner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/thread_pool.hpp"

namespace cyclops::core {
namespace {

/// Coarse 2-D raster over (a, b) around a center, scoring with `score`
/// (higher is better).  Returns the best (a, b).
///
/// Rows are scored in parallel and reduced in row order with the same
/// strict `>` the serial scan used, so the winner is still the first
/// maximum in row-major order — bit-identical at any thread count.  The
/// grid values themselves come from the same sequential `+= step`
/// accumulation as the serial loop.
template <typename ScoreFn>
std::pair<double, double> raster(double a0, double b0, double half_extent,
                                 double step, int& evals,
                                 const ScoreFn& score,
                                 util::ThreadPool& pool) {
  std::vector<double> as, bs;
  for (double a = a0 - half_extent; a <= a0 + half_extent; a += step) {
    as.push_back(a);
  }
  for (double b = b0 - half_extent; b <= b0 + half_extent; b += step) {
    bs.push_back(b);
  }

  double best = score(a0, b0);
  double best_a = a0, best_b = b0;
  evals += 1 + static_cast<int>(as.size() * bs.size());

  struct RowBest {
    double score = -std::numeric_limits<double>::infinity();
    double b = 0.0;
  };
  std::vector<RowBest> rows(as.size());
  util::parallel_for(
      as.size(),
      [&](std::size_t i) {
        RowBest row;
        for (double b : bs) {
          const double s = score(as[i], b);
          if (s > row.score) {
            row.score = s;
            row.b = b;
          }
        }
        rows[i] = row;
      },
      pool);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].score > best) {
      best = rows[i].score;
      best_a = as[i];
      best_b = rows[i].b;
    }
  }
  return {best_a, best_b};
}

}  // namespace

const char* to_string(AlignStatus status) noexcept {
  switch (status) {
    case AlignStatus::kConverged:
      return "converged";
    case AlignStatus::kMaxIterations:
      return "max-iterations";
    case AlignStatus::kDegenerateGeometry:
      return "degenerate-geometry";
  }
  return "unknown";
}

AlignResult ExhaustiveAligner::align(const sim::Scene& scene,
                                     const sim::Voltages& hint) const {
  AlignResult result = align_once(scene, hint);
  const double sensitivity = scene.config().sfp.rx_sensitivity_dbm;
  if (result.power_dbm < sensitivity) {
    // The hint led the search into a dead corner: redo from scratch with a
    // wider sweep (the lab equivalent: start the scan over).
    AlignerOptions wide = options_;
    wide.tx_scan_half_extent = std::max(options_.tx_scan_half_extent, 6.0);
    wide.rx_scan_half_extent = std::max(options_.rx_scan_half_extent, 6.0);
    ExhaustiveAligner wide_aligner(wide);
    wide_aligner.pool_ = pool_;  // retry on the same pool, not the global
    AlignResult retry = wide_aligner.align_once(scene, {});
    retry.evaluations += result.evaluations;
    if (retry.power_dbm > result.power_dbm) result = retry;
  }
  if (result.power_dbm >= sensitivity) {
    result.status = AlignStatus::kConverged;
  } else if (!std::isfinite(result.power_dbm)) {
    result.status = AlignStatus::kDegenerateGeometry;
  } else {
    result.status = AlignStatus::kMaxIterations;
  }
  return result;
}

AlignResult ExhaustiveAligner::align_once(const sim::Scene& scene,
                                          const sim::Voltages& hint) const {
  AlignResult result;
  sim::Voltages v = hint;
  const double vmax = scene.tx().galvo().spec().max_voltage;
  const auto clamp_all = [&](sim::Voltages& vv) {
    vv.tx1 = std::clamp(vv.tx1, -vmax, vmax);
    vv.tx2 = std::clamp(vv.tx2, -vmax, vmax);
    vv.rx1 = std::clamp(vv.rx1, -vmax, vmax);
    vv.rx2 = std::clamp(vv.rx2, -vmax, vmax);
  };

  // Phase A: sweep the TX beam until the quad photodiodes see light.
  const auto diode_sum = [&](double t1, double t2) {
    sim::Voltages probe = v;
    probe.tx1 = t1;
    probe.tx2 = t2;
    return scene.photodiodes(probe).sum();
  };
  std::tie(v.tx1, v.tx2) =
      raster(v.tx1, v.tx2, options_.tx_scan_half_extent, options_.tx_scan_step,
             result.evaluations, diode_sum, *pool_);

  // Phase B: sweep the RX GM until fiber power appears.
  const auto fiber_power_rx = [&](double r1, double r2) {
    sim::Voltages probe = v;
    probe.rx1 = r1;
    probe.rx2 = r2;
    return scene.received_power_dbm(probe);
  };
  std::tie(v.rx1, v.rx2) =
      raster(v.rx1, v.rx2, options_.rx_scan_half_extent, options_.rx_scan_step,
             result.evaluations, fiber_power_rx, *pool_);

  // Phase C: joint polish — a 4-D Nelder-Mead on received power.
  for (int round = 0; round < options_.refine_rounds; ++round) {
    opt::NelderMeadOptions nm;
    nm.initial_step = round == 0 ? 0.15 : 0.02;
    nm.max_evaluations = 600;
    nm.x_tolerance = 1e-5;
    const auto objective = [&](std::span<const double> x) {
      sim::Voltages probe{x[0], x[1], x[2], x[3]};
      const double p = scene.received_power_dbm(probe);
      return std::isfinite(p) ? -p : 1e6;
    };
    const auto nm_result =
        opt::nelder_mead(objective, {v.tx1, v.tx2, v.rx1, v.rx2}, nm);
    result.evaluations += nm_result.evaluations;
    if (nm_result.value < 1e6) {
      v = {nm_result.params[0], nm_result.params[1], nm_result.params[2],
           nm_result.params[3]};
    }
  }
  clamp_all(v);

  result.voltages = v;
  result.power_dbm = scene.received_power_dbm(v);
  ++result.evaluations;
  return result;
}

}  // namespace cyclops::core

// Traditional probe-based tracking-and-pointing — the baseline Cyclops
// replaces.
//
// FSONet-style [32] TP dithers the steering mirrors around the current
// setpoint and follows the feedback gradient (quad-photodiode error for
// the TX, received fiber power for the RX).  §3 argues this is
// "challenging and likely even infeasible" for a VR link because the RX
// moves angularly and the TX and RX voltages must be optimized *jointly*,
// with every probe costing a real DAQ settle-and-measure cycle.  This
// implementation makes that argument concrete and measurable
// (bench/baseline_probe_tp): each probe observation costs
// `probe_interval` of wall-clock time, during which the rig keeps moving.
#pragma once

#include <algorithm>
#include <cmath>

#include "sim/scene.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::core {

struct ProbeTpConfig {
  /// Wall-clock cost of one probe observation (DAQ write + settle + ADC
  /// read).  GVS102 settle (300 us) + DAQ conversion (~1.5 ms).
  util::SimTimeUs probe_interval = 1800;
  /// Dither amplitude (V).
  double dither_volts = 0.02;
  /// Gradient-ascent step as a multiple of the dither.
  double gain = 1.6;
  /// Voltage clamp.
  double max_voltage = 10.0;
};

/// One TP maintenance round = a fixed schedule of probe observations plus
/// the resulting voltage update.  The caller advances the scene between
/// probes (the rig moves while the probes run).
class ProbeTracker {
 public:
  explicit ProbeTracker(ProbeTpConfig config) : config_(config) {}

  /// Number of probe observations in one maintenance round (2 axes x
  /// 2 ends x 2 signs).
  static constexpr int kProbesPerRound = 8;

  /// Total wall-clock duration of one round.
  util::SimTimeUs round_duration() const {
    return config_.probe_interval * kProbesPerRound;
  }

  /// Runs one maintenance round against the scene's *current* state via
  /// `observe_power(voltages)` which the caller can wrap to advance time.
  /// Returns the updated voltages.
  template <typename ObserveFn>
  sim::Voltages round(const sim::Voltages& current,
                      const ObserveFn& observe_power) const {
    sim::Voltages v = current;
    double* channels[4] = {&v.tx1, &v.tx2, &v.rx1, &v.rx2};
    for (double* channel : channels) {
      const double saved = *channel;
      *channel = clamp(saved + config_.dither_volts);
      const double up = observe_power(v);
      *channel = clamp(saved - config_.dither_volts);
      const double down = observe_power(v);
      *channel = saved;
      if (!std::isfinite(up) && !std::isfinite(down)) continue;
      const double gradient_sign = (up > down) ? 1.0 : -1.0;
      // Step proportional to the observed dB difference, capped.
      const double delta_db =
          std::isfinite(up) && std::isfinite(down) ? std::abs(up - down) : 3.0;
      const double step = std::min(1.0, delta_db / 3.0) * config_.gain *
                          config_.dither_volts * gradient_sign;
      *channel = clamp(saved + step);
    }
    return v;
  }

  const ProbeTpConfig& config() const noexcept { return config_; }

 private:
  double clamp(double x) const {
    return std::clamp(x, -config_.max_voltage, config_.max_voltage);
  }

  ProbeTpConfig config_;
};

}  // namespace cyclops::core

// Automated exhaustive-search alignment (§4.2).
//
// Finds the four GM voltages maximizing received power using only what the
// lab bench offers: the quad-photodiode sum around the RX aperture (wide
// capture basin, works even when no light reaches the fiber) and the
// SFP-reported received power (sharp, used for the final polish).  This is
// the 1-2 minute search used once per Stage-2 training sample; it knows
// nothing about any model.
#pragma once

#include "opt/nelder_mead.hpp"
#include "runtime/context.hpp"
#include "sim/scene.hpp"
#include "util/thread_pool.hpp"

namespace cyclops::core {

struct AlignerOptions {
  /// Coarse TX raster half-extent (V) and step (V).
  double tx_scan_half_extent = 3.0;
  double tx_scan_step = 0.2;
  /// RX raster half-extent/step once the TX beam illuminates the diodes.
  double rx_scan_half_extent = 3.0;
  double rx_scan_step = 0.2;
  /// Joint polish iterations (alternating 2-D refinements + 4-D simplex).
  int refine_rounds = 2;
};

/// Why an alignment search ended the way it did.
enum class AlignStatus {
  /// Found power meets the SFP sensitivity — a sample the lab would
  /// actually record.
  kConverged,
  /// The search exhausted its rasters + polish rounds without reaching
  /// sensitivity; the best point is real but below the SFP floor.
  kMaxIterations,
  /// No finite fiber power anywhere the search looked (occluded path,
  /// rig outside the steerable cone) — the geometry, not the search
  /// budget, is the problem.
  kDegenerateGeometry,
};

const char* to_string(AlignStatus status) noexcept;

struct AlignResult {
  sim::Voltages voltages;
  double power_dbm = 0.0;
  /// Total scene observations consumed (the "minutes of search" proxy).
  int evaluations = 0;
  AlignStatus status = AlignStatus::kMaxIterations;

  bool converged() const noexcept { return status == AlignStatus::kConverged; }
};

class ExhaustiveAligner {
 public:
  /// Raster rows fan out over `ctx.pool()` (results are bit-identical at
  /// any thread count, so which pool is purely a scheduling choice).
  explicit ExhaustiveAligner(
      AlignerOptions options = {},
      const runtime::Context& ctx = runtime::Context::default_ctx())
      : options_(options), pool_(&ctx.pool()) {}

  /// Aligns the link at the scene's current rig pose, starting the search
  /// from `hint` (e.g. the previously aligned voltages).  Falls back to a
  /// wider from-scratch sweep when the hinted search fails to reach the
  /// SFP sensitivity.
  AlignResult align(const sim::Scene& scene, const sim::Voltages& hint) const;

 private:
  AlignResult align_once(const sim::Scene& scene,
                         const sim::Voltages& hint) const;

  AlignerOptions options_;
  util::ThreadPool* pool_;
};

}  // namespace cyclops::core

// Real-time tracking-and-pointing controller.
//
// Event model per §5.2: the VRH-T delivers a pose report (12-13 ms
// cadence, <1 ms control-channel latency); the controller computes P
// (microseconds) and commands the DAQ, which quantizes the voltages and
// applies them after its conversion latency (~1.5 ms) plus the GM's
// small-angle settle time.  The controller itself never touches ground
// truth — only reports and its learned pointing solver.
#pragma once

#include <optional>

#include "core/pointing.hpp"
#include "galvo/galvo_mirror.hpp"
#include "tracking/predictor.hpp"
#include "tracking/vrh_tracker.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::core {

struct TpConfig {
  galvo::Daq daq;
  /// Servo settle model: small-angle latency plus a per-volt term for
  /// large realignment steps.
  galvo::ServoDynamics servo;
  double gm_settle_s = 300e-6;
  /// Upper bound used for accounting the pure P computation (the measured
  /// value is benchmarked in bench/micro_pointing; it is ~microseconds).
  double compute_s = 50e-6;
  /// Extension (off by default = the paper's system): extrapolate the
  /// pose to the voltage-application instant with a constant-velocity
  /// Kalman predictor, cancelling most of the tracking-period + pointing
  /// latency wall (bench/ablation_prediction).
  bool predict_pose = false;
  tracking::PredictorConfig predictor;

  double pointing_latency_s() const noexcept {
    return daq.conversion_latency_s + gm_settle_s + compute_s;
  }
};

/// A voltage command scheduled for a future instant.
struct PendingCommand {
  util::SimTimeUs apply_time = 0;
  sim::Voltages voltages;
};

class TpController {
 public:
  TpController(PointingSolver solver, TpConfig config,
                sim::Voltages initial_voltages = {});

  /// Handles one tracker report; returns the scheduled realignment (or
  /// nullopt if the pointing iteration failed to converge).
  std::optional<PendingCommand> on_report(const tracking::PoseReport& report);

  /// Latest commanded voltages (what the GMs will hold after the pending
  /// command applies).
  const sim::Voltages& commanded() const noexcept { return commanded_; }

  const TpConfig& config() const noexcept { return config_; }
  const PointingSolver& solver() const noexcept { return solver_; }

  /// Cumulative stats for the evaluation harness.
  int reports_handled() const noexcept { return reports_; }
  int failures() const noexcept { return failures_; }
  double avg_pointing_iterations() const noexcept;

 private:
  PointingSolver solver_;
  TpConfig config_;
  sim::Voltages commanded_;
  tracking::PosePredictor predictor_;
  int reports_ = 0;
  int failures_ = 0;
  long total_iterations_ = 0;
};

}  // namespace cyclops::core

// VRH-T drift detection and mapping refresh.
//
// §4's deployment story: "in case of re-deployment or VRH-T drift, the
// only re-training (calibration) that needs to be re-done is the mapping
// step."  This module supplies the missing operational piece — noticing
// the drift.  The TP controller expects near-peak power right after every
// realignment; a persistent post-realignment shortfall (while the link
// still works) means the learned mapping no longer matches the tracker's
// frame.  The monitor tracks an EMA of the post-realignment margin and
// raises a recalibration flag when it degrades past a threshold.
#pragma once

#include "util/sim_clock.hpp"

namespace cyclops::obs {
class Registry;
}

namespace cyclops::core {

struct DriftMonitorConfig {
  /// Expected post-realignment received power when healthy (dBm).
  double healthy_power_dbm = -10.5;
  /// Degradation (dB below healthy) that flags drift.
  double drift_threshold_db = 6.0;
  /// EMA time constant over realignment samples.
  int window_samples = 64;
  /// Samples required before the monitor can flag anything.
  int min_samples = 32;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftMonitorConfig config) : config_(config) {}

  /// Feeds the received power measured shortly after a realignment
  /// settles (i.e. when the beam should be at its best).
  void on_post_realignment_power(double power_dbm);

  /// Smoothed post-realignment power (dBm).
  double smoothed_power_dbm() const noexcept { return ema_; }

  /// True when the mapping should be re-learned (Stage 2 only).  The flag
  /// latches: once the EMA has crossed `healthy - threshold` (strictly
  /// below — an EMA sitting exactly at the boundary does not flag) it
  /// stays raised until reset(), so a refit in flight is not cancelled by
  /// the EMA wobbling back over the line (hysteresis).
  bool recalibration_needed() const noexcept;

  /// Call after re-running the mapping step.  Clears the EMA, the sample
  /// count, and the latched flag.
  void reset();

  int samples() const noexcept { return samples_; }
  const DriftMonitorConfig& config() const noexcept { return config_; }

  /// Exports the monitor state as gauges (`drift_monitor_ema_dbm`,
  /// `drift_monitor_samples`, `drift_monitor_recal_needed`).  A no-op
  /// when telemetry is compiled out (CYCLOPS_OBS=OFF).
  void publish(obs::Registry& registry) const;

 private:
  DriftMonitorConfig config_;
  double ema_ = 0.0;
  int samples_ = 0;
  bool latched_ = false;
};

}  // namespace cyclops::core

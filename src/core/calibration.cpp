#include "core/calibration.hpp"

#include "geom/mat3.hpp"

namespace cyclops::core {

geom::Pose random_pose_error(util::Rng& rng, double pos_sigma,
                             double angle_sigma) {
  const geom::Vec3 axis =
      geom::Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
  return {geom::Mat3::rotation(axis, rng.normal(0.0, angle_sigma)),
          {rng.normal(0.0, pos_sigma), rng.normal(0.0, pos_sigma),
           rng.normal(0.0, pos_sigma)}};
}

geom::Pose random_rig_pose(const geom::Pose& nominal, double position_extent,
                           double angle_extent, util::Rng& rng) {
  const geom::Vec3 axis =
      geom::Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
  const double angle = rng.uniform(-angle_extent, angle_extent);
  const geom::Vec3 offset{rng.uniform(-position_extent, position_extent),
                          rng.uniform(-position_extent, position_extent),
                          rng.uniform(-position_extent, position_extent)};
  return geom::Pose{geom::Mat3::rotation(axis, angle) * nominal.rotation(),
                    nominal.translation() + offset};
}

// calibrate_prototype lives in cal/engine.cpp: the pipeline is now the
// phase sequence of cal::CalibrationEngine, and the one-shot entry point
// is an adapter that steps the engine to completion.

}  // namespace cyclops::core

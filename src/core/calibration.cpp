#include "core/calibration.hpp"

#include "galvo/factory.hpp"
#include "geom/mat3.hpp"
#include "obs/config.hpp"

namespace cyclops::core {
namespace {

geom::Pose random_pose_error(util::Rng& rng, double pos_sigma,
                             double angle_sigma) {
  const geom::Vec3 axis =
      geom::Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
  return {geom::Mat3::rotation(axis, rng.normal(0.0, angle_sigma)),
          {rng.normal(0.0, pos_sigma), rng.normal(0.0, pos_sigma),
           rng.normal(0.0, pos_sigma)}};
}

}  // namespace

geom::Pose random_rig_pose(const geom::Pose& nominal, double position_extent,
                           double angle_extent, util::Rng& rng) {
  const geom::Vec3 axis =
      geom::Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
  const double angle = rng.uniform(-angle_extent, angle_extent);
  const geom::Vec3 offset{rng.uniform(-position_extent, position_extent),
                          rng.uniform(-position_extent, position_extent),
                          rng.uniform(-position_extent, position_extent)};
  return geom::Pose{geom::Mat3::rotation(axis, angle) * nominal.rotation(),
                    nominal.translation() + offset};
}

CalibrationResult calibrate_prototype(sim::Prototype& proto,
                                      const CalibrationConfig& config,
                                      util::Rng& rng,
                                      const runtime::Context& ctx) {
  const galvo::GalvoSpec spec = galvo::gvs102_spec();
  const GmaModel guess = nominal_kspace_guess(proto.config.board_distance);

  // ---- Stage 1: each GMA on the board rig. ----
  const galvo::GalvoMirror tx_galvo(proto.tx_galvo_truth, spec);
  const auto tx_samples = collect_board_samples(
      tx_galvo, proto.k_from_tx_gma, config.board, rng, ctx);
  KSpaceFitReport tx_stage1 =
      fit_kspace_model(tx_samples, guess, config.stage1_options, ctx);

  const galvo::GalvoMirror rx_galvo(proto.rx_galvo_truth, spec);
  const auto rx_samples = collect_board_samples(
      rx_galvo, proto.k_from_rx_gma, config.board, rng, ctx);
  KSpaceFitReport rx_stage1 =
      fit_kspace_model(rx_samples, guess, config.stage1_options, ctx);

  // ---- Stage 2: aligned-link tuples in the deployed scene. ----
  ExhaustiveAligner aligner(config.aligner, ctx);
  std::vector<AlignedSample> tuples;
  tuples.reserve(static_cast<std::size_t>(config.stage2_samples));
  sim::Voltages hint{};
  for (int i = 0; i < config.stage2_samples; ++i) {
    const geom::Pose pose =
        random_rig_pose(proto.nominal_rig_pose, config.pose_position_extent,
                        config.pose_angle_extent, rng);
    proto.apply_rig_flex(rng);
    proto.scene.set_rig_pose(pose);
    const AlignResult aligned = aligner.align(proto.scene, hint);
    if constexpr (obs::kEnabled) {
      ctx.registry()
          .counter("align_status_total",
                   {{"status", to_string(aligned.status)}})
          .inc();
    }
    if (!aligned.converged()) continue;  // the lab would not record this pose
    hint = aligned.voltages;
    const tracking::PoseReport report = proto.tracker.report(0, pose);
    tuples.push_back({aligned.voltages, report.pose});
  }

  // Initial guesses: manual measurement of the deployment.
  const geom::Pose tx_guess =
      proto.true_map_tx * random_pose_error(rng, config.guess_position_sigma,
                                            config.guess_angle_sigma);
  const geom::Pose rx_guess =
      proto.true_map_rx * random_pose_error(rng, config.guess_position_sigma,
                                            config.guess_angle_sigma);

  MappingFitReport mapping =
      config.blind_stage2
          ? fit_mapping_blind(tx_stage1.model, rx_stage1.model, tuples, rng,
                              config.stage2_options, ctx)
          : fit_mapping(tx_stage1.model, rx_stage1.model, tuples, tx_guess,
                        rx_guess, config.stage2_options, ctx);
  // Multi-start: the 12-parameter landscape has local optima; when the
  // residual looks poor, retry from jittered guesses and keep the best.
  for (int attempt = 0;
       attempt < 4 && mapping.avg_coincidence_m > 5e-3; ++attempt) {
    const geom::Pose tx_retry =
        tx_guess * random_pose_error(rng, config.guess_position_sigma,
                                     config.guess_angle_sigma);
    const geom::Pose rx_retry =
        rx_guess * random_pose_error(rng, config.guess_position_sigma,
                                     config.guess_angle_sigma);
    MappingFitReport candidate =
        fit_mapping(tx_stage1.model, rx_stage1.model, tuples, tx_retry,
                    rx_retry, config.stage2_options, ctx);
    if (candidate.avg_coincidence_m < mapping.avg_coincidence_m) {
      mapping = std::move(candidate);
    }
  }

  proto.scene.set_rig_pose(proto.nominal_rig_pose);
  return {std::move(tx_stage1), std::move(rx_stage1), std::move(mapping),
          std::move(tuples)};
}

}  // namespace cyclops::core

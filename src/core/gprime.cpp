#include "core/gprime.hpp"

#include <cmath>

#include "geom/ray.hpp"
#include "obs/registry.hpp"

namespace cyclops::core {
namespace {

std::optional<geom::Vec3> hit_on_plane(const std::optional<geom::Ray>& ray,
                                       const geom::Plane& plane) {
  if (!ray) return std::nullopt;
  const auto t = geom::intersect(*ray, plane, /*forward_only=*/false);
  if (!t) return std::nullopt;
  return ray->at(*t);
}

/// Records G' convergence tallies through the solver's hoisted handles on
/// every exit path (null handles — telemetry compiled out — record
/// nothing).
struct GPrimeRecorder {
  const GPrimeResult& result;
  obs::Counter* solves;
  obs::Counter* converged;
  obs::Histogram* iterations;

  ~GPrimeRecorder() {
    if (solves == nullptr) return;
    solves->inc();
    if (result.converged) converged->inc();
    iterations->record(static_cast<double>(result.iterations));
  }
};

}  // namespace

GPrimeSolver::GPrimeSolver(GPrimeOptions options, const runtime::Context& ctx)
    : options_(options) {
  if constexpr (obs::kEnabled) {
    obs::Registry& registry = ctx.registry();
    solves_ = &registry.counter("gprime_solves_total");
    converged_ = &registry.counter("gprime_converged_total");
    iterations_ = &registry.histogram(
        "gprime_iterations", obs::HistogramSpec::linear(-0.5, 1.0, 16));
  }
}

GPrimeState GPrimeSolver::begin(double v1_init, double v2_init) const {
  GPrimeState state;
  state.result.v1 = v1_init;
  state.result.v2 = v2_init;
  return state;
}

bool GPrimeSolver::advance(const GmaModel& model, const geom::Vec3& target,
                           GPrimeState& state) const {
  GPrimeResult& result = state.result;
  if (state.halted || result.converged ||
      result.iterations >= options_.max_iterations) {
    return false;
  }
  result.iterations += 1;

  const double eps = options_.probe_epsilon_volts;
  const auto ray0 = model.trace(result.v1, result.v2);
  if (!ray0) {
    state.halted = true;
    return false;
  }
  // Plane P: perpendicular to the current beam, through the target.
  const geom::Plane plane{target, ray0->dir};

  const auto k0 = hit_on_plane(ray0, plane);
  const auto k1 = hit_on_plane(model.trace(result.v1 + eps, result.v2), plane);
  const auto k2 = hit_on_plane(model.trace(result.v1, result.v2 + eps), plane);
  if (!k0 || !k1 || !k2) {
    state.halted = true;
    return false;
  }

  // Per-volt motion of the hit point on P.
  const geom::Vec3 u1 = (*k1 - *k0) / eps;
  const geom::Vec3 u2 = (*k2 - *k0) / eps;
  const geom::Vec3 d = target - *k0;

  // Least-squares solve a*u1 + b*u2 = d (2x2 normal equations).
  const double a11 = u1.dot(u1);
  const double a12 = u1.dot(u2);
  const double a22 = u2.dot(u2);
  const double b1 = u1.dot(d);
  const double b2 = u2.dot(d);
  const double det = a11 * a22 - a12 * a12;
  if (std::abs(det) < 1e-18) {
    state.halted = true;
    return false;
  }
  const double a = (b1 * a22 - b2 * a12) / det;
  const double b = (a11 * b2 - a12 * b1) / det;

  result.v1 += a;
  result.v2 += b;

  if (std::abs(a) < options_.tolerance_volts &&
      std::abs(b) < options_.tolerance_volts) {
    result.converged = true;
    return false;
  }
  return result.iterations < options_.max_iterations;
}

void GPrimeSolver::finish(const GmaModel& model, const geom::Vec3& target,
                          GPrimeState& state) const {
  if (state.halted) return;  // the one-shot early returns skip the trace
  if (const auto final_ray = model.trace(state.result.v1, state.result.v2)) {
    state.result.miss_distance =
        geom::line_point_distance(*final_ray, target);
  }
}

GPrimeResult GPrimeSolver::solve(const GmaModel& model,
                                 const geom::Vec3& target, double v1_init,
                                 double v2_init) const {
  GPrimeState state = begin(v1_init, v2_init);
  const GPrimeRecorder recorder{state.result, solves_, converged_,
                                iterations_};
  while (advance(model, target, state)) {
  }
  finish(model, target, state);
  return state.result;
}

}  // namespace cyclops::core

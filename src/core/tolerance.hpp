// Movement-tolerance measurement, §5.1's methodology as an API:
// exhaustively align the link, then perturb one terminal from the aligned
// position (no TP running) until received power falls below the SFP
// sensitivity.  Binary-searched over the worst perturbation axis, exactly
// how Table 1 and Fig 11 are produced.
#pragma once

#include "sim/prototype.hpp"

namespace cyclops::core {

/// Peak received power after exhaustive alignment at the nominal pose.
double aligned_peak_power_dbm(sim::Prototype& proto);

/// Angular movement tolerance of the TX terminal (rad): rigid rotation of
/// the whole TX assembly about its GM mirror, worst of the two transverse
/// axes and both signs.
double tx_angular_tolerance(sim::Prototype& proto);

/// Angular movement tolerance of the RX terminal (rad): the rotation-stage
/// measurement — rotate the rig about the RX GM mirror.
double rx_angular_tolerance(sim::Prototype& proto);

/// Lateral movement tolerance of the RX terminal (m): translate the rig
/// along the worst transverse axis.
double rx_lateral_tolerance(sim::Prototype& proto);

}  // namespace cyclops::core

// 3x3 matrices and axis-angle (Rodrigues) rotations.
#pragma once

#include "geom/vec3.hpp"

namespace cyclops::geom {

/// Row-major 3x3 matrix.
struct Mat3 {
  double m[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};

  static Mat3 identity() { return {}; }
  static Mat3 zero();

  /// Rotation by `angle` radians about the (unit or non-unit) axis, via the
  /// Rodrigues formula.  This is R(r, theta) from the paper's GM model.
  static Mat3 rotation(const Vec3& axis, double angle);

  /// Rotation taking unit vector `from` to unit vector `to`.
  static Mat3 rotation_between(const Vec3& from, const Vec3& to);

  Vec3 operator*(const Vec3& v) const;
  Mat3 operator*(const Mat3& o) const;
  Mat3 transposed() const;

  /// Trace of the matrix.
  double trace() const { return m[0][0] + m[1][1] + m[2][2]; }

  Vec3 row(int i) const { return {m[i][0], m[i][1], m[i][2]}; }
  Vec3 col(int j) const { return {m[0][j], m[1][j], m[2][j]}; }
};

/// Converts a rotation matrix to its rotation-vector (axis * angle) form.
/// Inverse of Mat3::rotation for angles in [0, pi].
Vec3 rotation_vector(const Mat3& r);

}  // namespace cyclops::geom

// Rays and planes — the optical beam in Cyclops is traced as a chief ray
// (origin point p + unit direction x⃗, the paper's (p, x⃗) beam spec).
#pragma once

#include <optional>

#include "geom/vec3.hpp"

namespace cyclops::geom {

struct Ray {
  Vec3 origin;
  Vec3 dir;  ///< Unit direction.

  Vec3 at(double t) const { return origin + dir * t; }
};

/// Plane through `point` with unit `normal`.
struct Plane {
  Vec3 point;
  Vec3 normal;

  /// Signed distance from p to the plane (positive on the normal side).
  double signed_distance(const Vec3& p) const {
    return (p - point).dot(normal);
  }
};

/// Ray/plane intersection parameter t (ray.at(t) is on the plane), or
/// nullopt if the ray is (near-)parallel to the plane or hits behind the
/// origin when forward_only is set.
std::optional<double> intersect(const Ray& ray, const Plane& plane,
                                bool forward_only = true);

/// Point on the ray closest to p.
Vec3 closest_point(const Ray& ray, const Vec3& p);

/// Distance between a point and the infinite line through the ray.
double line_point_distance(const Ray& ray, const Vec3& p);

inline std::optional<double> intersect(const Ray& ray, const Plane& plane,
                                       bool forward_only) {
  const double denom = ray.dir.dot(plane.normal);
  if (std::abs(denom) < 1e-12) return std::nullopt;
  const double t = (plane.point - ray.origin).dot(plane.normal) / denom;
  if (forward_only && t < 0.0) return std::nullopt;
  return t;
}

inline Vec3 closest_point(const Ray& ray, const Vec3& p) {
  const double t = (p - ray.origin).dot(ray.dir);
  return ray.at(t);
}

inline double line_point_distance(const Ray& ray, const Vec3& p) {
  return distance(closest_point(ray, p), p);
}

}  // namespace cyclops::geom

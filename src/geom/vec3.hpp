// 3-vector used for points, directions, and rotation axes.
#pragma once

#include <cmath>
#include <ostream>

namespace cyclops::geom {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }

  /// Unit vector in this direction.  Undefined for the zero vector.
  Vec3 normalized() const {
    const double n = norm();
    return {x / n, y / n, z / n};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

/// Angle between two (not necessarily unit) vectors, in [0, pi].
inline double angle_between(const Vec3& a, const Vec3& b) {
  const double c = a.dot(b) / (a.norm() * b.norm());
  return std::acos(c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c));
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

/// An arbitrary unit vector orthogonal to v (v must be nonzero).
inline Vec3 any_orthogonal(const Vec3& v) {
  const Vec3 axis = std::abs(v.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  return v.cross(axis).normalized();
}

}  // namespace cyclops::geom

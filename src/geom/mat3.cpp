#include "geom/mat3.hpp"

#include <cmath>

namespace cyclops::geom {

Mat3 Mat3::zero() {
  Mat3 z;
  for (auto& row : z.m)
    for (auto& v : row) v = 0.0;
  return z;
}

Mat3 Mat3::rotation(const Vec3& axis, double angle) {
  const double n = axis.norm();
  if (n == 0.0 || angle == 0.0) return identity();
  const Vec3 u = axis / n;
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  const double t = 1.0 - c;
  Mat3 r;
  r.m[0][0] = c + u.x * u.x * t;
  r.m[0][1] = u.x * u.y * t - u.z * s;
  r.m[0][2] = u.x * u.z * t + u.y * s;
  r.m[1][0] = u.y * u.x * t + u.z * s;
  r.m[1][1] = c + u.y * u.y * t;
  r.m[1][2] = u.y * u.z * t - u.x * s;
  r.m[2][0] = u.z * u.x * t - u.y * s;
  r.m[2][1] = u.z * u.y * t + u.x * s;
  r.m[2][2] = c + u.z * u.z * t;
  return r;
}

Mat3 Mat3::rotation_between(const Vec3& from, const Vec3& to) {
  const Vec3 f = from.normalized();
  const Vec3 t = to.normalized();
  const Vec3 axis = f.cross(t);
  const double s = axis.norm();
  const double c = f.dot(t);
  if (s < 1e-15) {
    if (c > 0.0) return identity();
    // Opposite directions: rotate pi about any orthogonal axis.
    return rotation(any_orthogonal(f), std::acos(-1.0));
  }
  return rotation(axis, std::atan2(s, c));
}

Vec3 Mat3::operator*(const Vec3& v) const {
  return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
          m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
          m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
}

Mat3 Mat3::operator*(const Mat3& o) const {
  Mat3 r = zero();
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      for (int k = 0; k < 3; ++k) r.m[i][j] += m[i][k] * o.m[k][j];
  return r;
}

Mat3 Mat3::transposed() const {
  Mat3 t;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) t.m[i][j] = m[j][i];
  return t;
}

Vec3 rotation_vector(const Mat3& r) {
  const double c = (r.trace() - 1.0) * 0.5;
  const double angle = std::acos(c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c));
  if (angle < 1e-12) return {0, 0, 0};
  const Vec3 skew{r.m[2][1] - r.m[1][2], r.m[0][2] - r.m[2][0],
                  r.m[1][0] - r.m[0][1]};
  const double s = skew.norm();
  if (s < 1e-9) {
    // angle ~ pi: extract the axis from the symmetric part.
    Vec3 axis{std::sqrt(std::max(0.0, (r.m[0][0] + 1.0) / 2.0)),
              std::sqrt(std::max(0.0, (r.m[1][1] + 1.0) / 2.0)),
              std::sqrt(std::max(0.0, (r.m[2][2] + 1.0) / 2.0))};
    // Fix signs using off-diagonal terms.
    if (axis.x >= axis.y && axis.x >= axis.z) {
      if (r.m[0][1] + r.m[1][0] < 0) axis.y = -axis.y;
      if (r.m[0][2] + r.m[2][0] < 0) axis.z = -axis.z;
    } else if (axis.y >= axis.z) {
      if (r.m[0][1] + r.m[1][0] < 0) axis.x = -axis.x;
      if (r.m[1][2] + r.m[2][1] < 0) axis.z = -axis.z;
    } else {
      if (r.m[0][2] + r.m[2][0] < 0) axis.x = -axis.x;
      if (r.m[1][2] + r.m[2][1] < 0) axis.y = -axis.y;
    }
    return axis.normalized() * angle;
  }
  return skew * (angle / s);
}

}  // namespace cyclops::geom

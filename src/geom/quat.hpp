// Unit quaternions for VRH orientation reports.
//
// The tracker substrate reports orientation as a quaternion (like a real
// headset runtime); internally all optics math uses Mat3.
#pragma once

#include "geom/mat3.hpp"
#include "geom/vec3.hpp"

namespace cyclops::geom {

struct Quat {
  double w = 1.0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  static Quat identity() { return {}; }
  static Quat from_axis_angle(const Vec3& axis, double angle);
  static Quat from_matrix(const Mat3& m);

  Quat operator*(const Quat& o) const;
  Quat conjugate() const { return {w, -x, -y, -z}; }
  double norm() const;
  Quat normalized() const;

  Vec3 rotate(const Vec3& v) const;
  Mat3 to_matrix() const;

  /// Rotation angle in [0, pi] represented by this (unit) quaternion.
  double angle() const;
};

/// Spherical linear interpolation between unit quaternions, t in [0, 1].
Quat slerp(const Quat& a, const Quat& b, double t);

/// Angular distance between two orientations, in radians.
double angular_distance(const Quat& a, const Quat& b);

}  // namespace cyclops::geom

#include "geom/pose.hpp"

namespace cyclops::geom {

Pose Pose::from_params(const std::array<double, 6>& p) {
  const Vec3 rvec{p[0], p[1], p[2]};
  const double angle = rvec.norm();
  const Mat3 r = angle > 0.0 ? Mat3::rotation(rvec, angle) : Mat3::identity();
  return {r, Vec3{p[3], p[4], p[5]}};
}

std::array<double, 6> Pose::params() const {
  const Vec3 rvec = rotation_vector(r_);
  return {rvec.x, rvec.y, rvec.z, t_.x, t_.y, t_.z};
}

Pose Pose::inverse() const {
  const Mat3 rt = r_.transposed();
  return {rt, rt * (-t_)};
}

Pose Pose::operator*(const Pose& o) const {
  return {r_ * o.r_, r_ * o.t_ + t_};
}

double translation_distance(const Pose& a, const Pose& b) {
  return distance(a.translation(), b.translation());
}

double rotation_distance(const Pose& a, const Pose& b) {
  const Mat3 rel = a.rotation().transposed() * b.rotation();
  return rotation_vector(rel).norm();
}

}  // namespace cyclops::geom

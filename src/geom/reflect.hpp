// Mirror reflection of a chief ray — the R(p0, x0, n', q) function from
// §4.1 of the paper: reflects the incoming beam off the mirror plane with
// (possibly rotated) normal n' through point q, moving the beam origin to
// the intersection point on the mirror.
#pragma once

#include <optional>

#include "geom/ray.hpp"

namespace cyclops::geom {

/// Reflects `incoming` off the mirror plane.  Returns the outgoing ray whose
/// origin is the hit point on the mirror, or nullopt if the ray misses the
/// plane (parallel or behind).
std::optional<Ray> reflect(const Ray& incoming, const Plane& mirror);

/// Direction-only reflection: d - 2 (d . n) n for unit normal n.
Vec3 reflect_dir(const Vec3& dir, const Vec3& unit_normal);

}  // namespace cyclops::geom

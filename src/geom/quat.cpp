#include "geom/quat.hpp"

#include <cmath>

namespace cyclops::geom {

Quat Quat::from_axis_angle(const Vec3& axis, double angle) {
  const double n = axis.norm();
  if (n == 0.0) return identity();
  const double half = angle * 0.5;
  const double s = std::sin(half) / n;
  return {std::cos(half), axis.x * s, axis.y * s, axis.z * s};
}

Quat Quat::from_matrix(const Mat3& m) {
  // Shepperd's method: pick the largest diagonal combination for stability.
  const double t = m.trace();
  Quat q;
  if (t > 0.0) {
    const double s = std::sqrt(t + 1.0) * 2.0;
    q.w = 0.25 * s;
    q.x = (m.m[2][1] - m.m[1][2]) / s;
    q.y = (m.m[0][2] - m.m[2][0]) / s;
    q.z = (m.m[1][0] - m.m[0][1]) / s;
  } else if (m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2]) {
    const double s = std::sqrt(1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]) * 2.0;
    q.w = (m.m[2][1] - m.m[1][2]) / s;
    q.x = 0.25 * s;
    q.y = (m.m[0][1] + m.m[1][0]) / s;
    q.z = (m.m[0][2] + m.m[2][0]) / s;
  } else if (m.m[1][1] > m.m[2][2]) {
    const double s = std::sqrt(1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]) * 2.0;
    q.w = (m.m[0][2] - m.m[2][0]) / s;
    q.x = (m.m[0][1] + m.m[1][0]) / s;
    q.y = 0.25 * s;
    q.z = (m.m[1][2] + m.m[2][1]) / s;
  } else {
    const double s = std::sqrt(1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]) * 2.0;
    q.w = (m.m[1][0] - m.m[0][1]) / s;
    q.x = (m.m[0][2] + m.m[2][0]) / s;
    q.y = (m.m[1][2] + m.m[2][1]) / s;
    q.z = 0.25 * s;
  }
  return q.normalized();
}

Quat Quat::operator*(const Quat& o) const {
  return {w * o.w - x * o.x - y * o.y - z * o.z,
          w * o.x + x * o.w + y * o.z - z * o.y,
          w * o.y - x * o.z + y * o.w + z * o.x,
          w * o.z + x * o.y - y * o.x + z * o.w};
}

double Quat::norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }

Quat Quat::normalized() const {
  const double n = norm();
  return {w / n, x / n, y / n, z / n};
}

Vec3 Quat::rotate(const Vec3& v) const {
  // v' = v + 2 q_vec x (q_vec x v + w v)
  const Vec3 qv{x, y, z};
  const Vec3 t = qv.cross(v) * 2.0;
  return v + t * w + qv.cross(t);
}

Mat3 Quat::to_matrix() const {
  Mat3 m;
  const double xx = x * x, yy = y * y, zz = z * z;
  const double xy = x * y, xz = x * z, yz = y * z;
  const double wx = w * x, wy = w * y, wz = w * z;
  m.m[0][0] = 1 - 2 * (yy + zz);
  m.m[0][1] = 2 * (xy - wz);
  m.m[0][2] = 2 * (xz + wy);
  m.m[1][0] = 2 * (xy + wz);
  m.m[1][1] = 1 - 2 * (xx + zz);
  m.m[1][2] = 2 * (yz - wx);
  m.m[2][0] = 2 * (xz - wy);
  m.m[2][1] = 2 * (yz + wx);
  m.m[2][2] = 1 - 2 * (xx + yy);
  return m;
}

double Quat::angle() const {
  const double c = std::abs(w) > 1.0 ? 1.0 : std::abs(w);
  return 2.0 * std::acos(c);
}

Quat slerp(const Quat& a, const Quat& b, double t) {
  Quat bb = b;
  double dot = a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z;
  if (dot < 0.0) {
    bb = {-b.w, -b.x, -b.y, -b.z};
    dot = -dot;
  }
  if (dot > 0.9995) {
    // Nearly parallel: linear interpolate and renormalize.
    Quat q{a.w + t * (bb.w - a.w), a.x + t * (bb.x - a.x),
           a.y + t * (bb.y - a.y), a.z + t * (bb.z - a.z)};
    return q.normalized();
  }
  const double theta = std::acos(dot);
  const double s = std::sin(theta);
  const double wa = std::sin((1.0 - t) * theta) / s;
  const double wb = std::sin(t * theta) / s;
  return Quat{wa * a.w + wb * bb.w, wa * a.x + wb * bb.x, wa * a.y + wb * bb.y,
              wa * a.z + wb * bb.z}
      .normalized();
}

double angular_distance(const Quat& a, const Quat& b) {
  return (a.conjugate() * b).angle();
}

}  // namespace cyclops::geom

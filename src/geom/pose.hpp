// Rigid 6-DoF transforms (SE(3)).
//
// A Pose maps coordinates in its *local* frame into the *parent* frame:
// world_point = pose.apply(local_point).  The 6-parameter vector form
// (rotation-vector + translation) is what the Stage-2 "mapping parameters"
// optimizer estimates — 6 per GMA, 12 total, exactly as in §4.2.
#pragma once

#include <array>

#include "geom/mat3.hpp"
#include "geom/quat.hpp"
#include "geom/ray.hpp"
#include "geom/vec3.hpp"

namespace cyclops::geom {

class Pose {
 public:
  Pose() = default;
  Pose(const Mat3& rotation, const Vec3& translation)
      : r_(rotation), t_(translation) {}

  static Pose identity() { return {}; }
  static Pose from_quat(const Quat& q, const Vec3& translation) {
    return {q.to_matrix(), translation};
  }
  /// Builds from the 6-parameter vector [rx, ry, rz, tx, ty, tz] where
  /// (rx, ry, rz) is a rotation vector (axis * angle).
  static Pose from_params(const std::array<double, 6>& p);

  const Mat3& rotation() const { return r_; }
  const Vec3& translation() const { return t_; }
  Quat rotation_quat() const { return Quat::from_matrix(r_); }

  /// The 6-parameter vector form (inverse of from_params).
  std::array<double, 6> params() const;

  Vec3 apply(const Vec3& p) const { return r_ * p + t_; }
  Vec3 apply_dir(const Vec3& d) const { return r_ * d; }
  Ray apply(const Ray& ray) const { return {apply(ray.origin), apply_dir(ray.dir)}; }
  Plane apply(const Plane& pl) const { return {apply(pl.point), apply_dir(pl.normal)}; }

  Pose inverse() const;
  /// Composition: (a * b).apply(p) == a.apply(b.apply(p)).
  Pose operator*(const Pose& o) const;

 private:
  Mat3 r_;
  Vec3 t_;
};

/// Translation distance between two poses.
double translation_distance(const Pose& a, const Pose& b);

/// Rotation angle between two poses' orientations, radians.
double rotation_distance(const Pose& a, const Pose& b);

}  // namespace cyclops::geom

#include "geom/reflect.hpp"

namespace cyclops::geom {

Vec3 reflect_dir(const Vec3& dir, const Vec3& unit_normal) {
  return dir - unit_normal * (2.0 * dir.dot(unit_normal));
}

std::optional<Ray> reflect(const Ray& incoming, const Plane& mirror) {
  const auto t = intersect(incoming, mirror);
  if (!t) return std::nullopt;
  const Vec3 hit = incoming.at(*t);
  const Vec3 n = mirror.normal.normalized();
  return Ray{hit, reflect_dir(incoming.dir, n)};
}

}  // namespace cyclops::geom
